//! Adaptive throughput re-estimation (an extension beyond the paper).
//!
//! The paper estimates worker throughput once, up front (§III-C:
//! "estimated by sampling"), and §V's group-based scheme hedges against
//! estimation *noise*. Neither handles estimation *drift* — a co-tenant VM
//! landing on a worker halfway through training permanently changes its
//! `c_i`, re-introducing exactly the consistent stragglers the allocation
//! was supposed to remove. This module closes the loop:
//!
//! 1. observe per-worker compute times each iteration,
//! 2. feed an EWMA estimator ([`hetgc_cluster::EwmaEstimator`]),
//! 3. every `reestimate_every` iterations, rebuild the coding strategy
//!    from the fresh estimates (Eq. 5 → Eq. 6 → Alg. 1/3).
//!
//! Rebuild cost is the Alg. 1 construction — microseconds (see the
//! `construction` Criterion bench) against iteration times of seconds, so
//! re-coding "for free" is realistic; the data movement a new allocation
//! implies is the real-world cost and is *not* modelled (documented
//! limitation).

use hetgc_cluster::{ClusterSpec, EwmaEstimator, StragglerModel, ThroughputEstimator};
use hetgc_coding::{AnyCodec, CodecBackend, CodecSession, GradientCodec};
use hetgc_sim::{simulate_bsp_iteration_in, BspIterationConfig, NetworkModel, RunMetrics};
use rand::{Rng, RngCore};

use crate::driver::drive_timing;
use crate::engine::{EngineRound, RoundEngine};
use crate::scheme::{BoxError, SchemeBuilder, SchemeKind};

/// How the cluster's true worker rates evolve over a run.
#[derive(Debug, Clone, PartialEq)]
pub enum RateDrift {
    /// Speeds never change (the paper's setting).
    None,
    /// At iteration `at` (0-based), worker `w`'s rate is multiplied by
    /// `factors[w]` permanently — a co-tenant arriving or a thermal
    /// throttle engaging.
    StepChange {
        /// Iteration at which the change takes effect.
        at: usize,
        /// Per-worker multipliers (missing entries = 1.0).
        factors: Vec<f64>,
    },
    /// Smooth sinusoidal fluctuation: worker `w`'s rate is scaled by
    /// `1 + amplitude·sin(2π·(iter/period + w/m))` (phase-shifted per
    /// worker so the cluster never slows down uniformly).
    Wave {
        /// Period in iterations.
        period: f64,
        /// Relative amplitude in `[0, 1)`.
        amplitude: f64,
    },
}

impl RateDrift {
    /// The true rates at a given iteration.
    pub fn rates_at(&self, base: &[f64], iteration: usize) -> Vec<f64> {
        match self {
            RateDrift::None => base.to_vec(),
            RateDrift::StepChange { at, factors } => base
                .iter()
                .enumerate()
                .map(|(w, &r)| {
                    if iteration >= *at {
                        r * factors.get(w).copied().unwrap_or(1.0)
                    } else {
                        r
                    }
                })
                .collect(),
            RateDrift::Wave { period, amplitude } => {
                let m = base.len() as f64;
                base.iter()
                    .enumerate()
                    .map(|(w, &r)| {
                        let phase = iteration as f64 / period + w as f64 / m;
                        r * (1.0 + amplitude * (2.0 * std::f64::consts::PI * phase).sin()).max(0.05)
                    })
                    .collect()
            }
        }
    }
}

/// Configuration of an adaptive-vs-static comparison run.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Which heterogeneity-aware scheme to run (HeterAware or GroupBased).
    pub kind: SchemeKind,
    /// Straggler tolerance `s`.
    pub stragglers: usize,
    /// Total iterations.
    pub iterations: usize,
    /// Dataset size in work units.
    pub samples: usize,
    /// Rebuild the code from fresh estimates every this many iterations
    /// (0 disables re-estimation — the static baseline does this
    /// implicitly).
    pub reestimate_every: usize,
    /// EWMA smoothing factor for the throughput tracker.
    pub ewma_alpha: f64,
    /// Per-iteration compute jitter σ.
    pub jitter: f64,
    /// Transient straggler injection.
    pub straggler_model: StragglerModel,
    /// Codec backend for decoding ([`CodecBackend::Auto`]: group-aware
    /// for group-based schemes, exact otherwise). Rebuilt strategies are
    /// recompiled into the same backend.
    pub backend: CodecBackend,
}

impl Default for AdaptiveConfig {
    /// Heter-aware, s = 1, 60 iterations, re-estimate every 5, α = 0.4.
    fn default() -> Self {
        AdaptiveConfig {
            kind: SchemeKind::HeterAware,
            stragglers: 1,
            iterations: 60,
            samples: 48,
            reestimate_every: 5,
            ewma_alpha: 0.4,
            jitter: 0.03,
            straggler_model: StragglerModel::None,
            backend: CodecBackend::Auto,
        }
    }
}

/// Outcome of one policy (static or adaptive) under drift.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// Timing metrics of the run.
    pub metrics: RunMetrics,
    /// How many times the strategy was rebuilt.
    pub rebuilds: usize,
    /// How many rebuild attempts failed (infeasible estimates) and kept
    /// the previous strategy.
    pub rebuild_failures: usize,
}

/// The adaptive-recoding [`RoundEngine`]: each round simulates one BSP
/// iteration at the drifted rates, feeds the EWMA estimator, and
/// periodically rebuilds the coding strategy from fresh estimates. A
/// timing-only engine — the unified [`drive_timing`] loop aggregates its
/// rounds into the run's [`RunMetrics`].
struct DriftEngine<'a> {
    cluster: &'a ClusterSpec,
    drift: &'a RateDrift,
    cfg: &'a AdaptiveConfig,
    base: Vec<f64>,
    codec: AnyCodec,
    session: CodecSession,
    estimator: EwmaEstimator,
    rebuilds: usize,
    rebuild_failures: usize,
}

impl<'a> DriftEngine<'a> {
    fn new<R: Rng + ?Sized>(
        cluster: &'a ClusterSpec,
        drift: &'a RateDrift,
        cfg: &'a AdaptiveConfig,
        rng: &mut R,
    ) -> Result<Self, BoxError> {
        let scheme = SchemeBuilder::new(cluster, cfg.stragglers).build(cfg.kind, rng)?;
        // Compile once per strategy into the configured backend; the
        // session is recreated only on rebuild (a new code means new
        // rows), never per iteration.
        let codec = scheme.compile_backend(cfg.backend)?;
        let session = codec.session();
        Ok(DriftEngine {
            cluster,
            drift,
            cfg,
            base: cluster.throughputs(),
            estimator: EwmaEstimator::new(cluster.len(), cfg.ewma_alpha),
            codec,
            session,
            rebuilds: 0,
            rebuild_failures: 0,
        })
    }
}

impl RoundEngine for DriftEngine<'_> {
    fn workers(&self) -> usize {
        self.codec.workers()
    }

    fn partitions(&self) -> usize {
        self.codec.partitions()
    }

    fn label(&self) -> &str {
        self.cfg.kind.name()
    }

    fn round(
        &mut self,
        round: usize,
        _params: &[f64],
        rng: &mut dyn RngCore,
    ) -> Result<EngineRound, BoxError> {
        let iter = round - 1; // drift schedules are 0-based
        let m = self.cluster.len();
        let rates = self.drift.rates_at(&self.base, iter);
        let k = self.codec.partitions();
        let work_per_partition = self.cfg.samples as f64 / k as f64;
        let sim_cfg = BspIterationConfig::new(&rates)
            .work_per_partition(work_per_partition)
            .network(NetworkModel::lan())
            .compute_jitter(self.cfg.jitter);
        let events = self.cfg.straggler_model.sample_iteration(m, rng);
        let outcome =
            simulate_bsp_iteration_in(&self.codec, &sim_cfg, &events, rng, &mut self.session)?;

        // Observe: each worker's measured rate this iteration (the master
        // sees compute duration; injected delay contaminates it exactly as
        // it would in production).
        for arr in &outcome.arrivals {
            if arr.compute_end.is_finite() {
                let work = self.codec.load_of(arr.worker) as f64 * work_per_partition;
                self.estimator
                    .observe(arr.worker, work, arr.compute_end.max(1e-9));
            }
        }

        // Periodic re-coding from fresh estimates.
        if self.cfg.reestimate_every > 0 && (iter + 1).is_multiple_of(self.cfg.reestimate_every) {
            if let Ok(estimates) = self.estimator.estimates() {
                match SchemeBuilder::new(self.cluster, self.cfg.stragglers)
                    .estimates(estimates)
                    .build(self.cfg.kind, rng)
                {
                    Ok(new_scheme) => match new_scheme.compile_backend(self.cfg.backend) {
                        Ok(new_codec) => {
                            self.codec = new_codec;
                            self.session = self.codec.session();
                            self.rebuilds += 1;
                        }
                        Err(_) => self.rebuild_failures += 1,
                    },
                    Err(_) => self.rebuild_failures += 1,
                }
            }
        }

        let Some(t) = outcome.completion else {
            // Keep running on the current code: transient failures are
            // recorded, not fatal.
            return Ok(EngineRound::failed(false));
        };
        Ok(EngineRound {
            elapsed: Some(t),
            at: None,
            gradient: None,
            residual: outcome.decode_residual,
            error_bound: None,
            results_used: outcome.decode_workers.len(),
            busy: outcome.busy,
            stop: false,
        })
    }
}

/// Runs one policy over a drifting cluster through the unified
/// [`drive_timing`] loop.
///
/// `reestimate_every = 0` gives the static baseline: the scheme is built
/// once from the *pre-drift* rates and never touched again.
///
/// # Errors
///
/// Propagates scheme-construction and simulator errors. A failed *rebuild*
/// is not an error — the run keeps the previous strategy and counts it in
/// [`AdaptiveOutcome::rebuild_failures`].
pub fn run_with_drift<R: Rng>(
    cluster: &ClusterSpec,
    drift: &RateDrift,
    cfg: &AdaptiveConfig,
    rng: &mut R,
) -> Result<AdaptiveOutcome, BoxError> {
    let mut engine = DriftEngine::new(cluster, drift, cfg, rng)?;
    let outcome = drive_timing(&mut engine, cfg.iterations, rng)?;
    Ok(AdaptiveOutcome {
        metrics: outcome.metrics,
        rebuilds: engine.rebuilds,
        rebuild_failures: engine.rebuild_failures,
    })
}

/// Convenience: static (never re-estimates) vs adaptive under the same
/// drift and seed-derived randomness.
///
/// # Errors
///
/// Propagates [`run_with_drift`] errors from either run.
pub fn compare_static_vs_adaptive<R: Rng>(
    cluster: &ClusterSpec,
    drift: &RateDrift,
    cfg: &AdaptiveConfig,
    rng: &mut R,
) -> Result<(AdaptiveOutcome, AdaptiveOutcome), BoxError> {
    let static_cfg = AdaptiveConfig {
        reestimate_every: 0,
        ..cfg.clone()
    };
    let static_run = run_with_drift(cluster, drift, &static_cfg, rng)?;
    let adaptive_run = run_with_drift(cluster, drift, cfg, rng)?;
    Ok((static_run, adaptive_run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cluster() -> ClusterSpec {
        ClusterSpec::from_vcpu_rows("drifty", &[(1, 2), (1, 3), (1, 4), (1, 5)], 10.0).unwrap()
    }

    #[test]
    fn drift_none_is_identity() {
        let base = [1.0, 2.0];
        assert_eq!(RateDrift::None.rates_at(&base, 10), base.to_vec());
    }

    #[test]
    fn drift_step_change_applies_from_at() {
        let d = RateDrift::StepChange {
            at: 5,
            factors: vec![0.5, 1.0],
        };
        let base = [4.0, 4.0];
        assert_eq!(d.rates_at(&base, 4), vec![4.0, 4.0]);
        assert_eq!(d.rates_at(&base, 5), vec![2.0, 4.0]);
        assert_eq!(d.rates_at(&base, 50), vec![2.0, 4.0]);
    }

    #[test]
    fn drift_step_change_missing_factors_default_to_one() {
        let d = RateDrift::StepChange {
            at: 0,
            factors: vec![0.5],
        };
        assert_eq!(d.rates_at(&[2.0, 2.0], 0), vec![1.0, 2.0]);
    }

    #[test]
    fn drift_wave_oscillates_but_stays_positive() {
        let d = RateDrift::Wave {
            period: 10.0,
            amplitude: 0.9,
        };
        let base = [1.0, 1.0, 1.0];
        for iter in 0..40 {
            for r in d.rates_at(&base, iter) {
                assert!(r > 0.0);
            }
        }
        // Not constant.
        assert_ne!(d.rates_at(&base, 0), d.rates_at(&base, 3));
    }

    #[test]
    fn adaptive_beats_static_when_drift_exceeds_tolerance() {
        let cluster = cluster();
        // TWO workers lose 70 % of their speed: with s = 1 the code can
        // only discard one of them, so the static allocation is forced to
        // wait for a slowed worker every iteration; rebalancing fixes it.
        let drift = RateDrift::StepChange {
            at: 15,
            factors: vec![1.0, 1.0, 0.3, 0.3],
        };
        let cfg = AdaptiveConfig {
            iterations: 60,
            reestimate_every: 5,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let (static_run, adaptive_run) =
            compare_static_vs_adaptive(&cluster, &drift, &cfg, &mut rng).unwrap();
        let t_static = static_run.metrics.avg_iteration_time().unwrap();
        let t_adaptive = adaptive_run.metrics.avg_iteration_time().unwrap();
        assert!(adaptive_run.rebuilds > 0);
        assert_eq!(static_run.rebuilds, 0);
        assert!(
            t_adaptive < t_static * 0.90,
            "adaptive {t_adaptive:.3} should beat static {t_static:.3}"
        );
    }

    #[test]
    fn adaptive_beats_static_when_a_worker_speeds_up() {
        let cluster = cluster();
        // A worker gets 3× faster (co-tenant left): the static allocation
        // leaves its new capacity idle; rebalancing exploits it.
        let drift = RateDrift::StepChange {
            at: 10,
            factors: vec![3.0, 1.0, 1.0, 1.0],
        };
        let cfg = AdaptiveConfig {
            iterations: 60,
            reestimate_every: 5,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let (static_run, adaptive_run) =
            compare_static_vs_adaptive(&cluster, &drift, &cfg, &mut rng).unwrap();
        let t_static = static_run.metrics.avg_iteration_time().unwrap();
        let t_adaptive = adaptive_run.metrics.avg_iteration_time().unwrap();
        assert!(
            t_adaptive < t_static * 0.95,
            "adaptive {t_adaptive:.3} should exploit the speed-up (static {t_static:.3})"
        );
    }

    #[test]
    fn coding_absorbs_single_worker_drift_without_rebuild() {
        // The counter-intuitive finding this module documents: when only
        // ONE worker slows (within the s = 1 budget), the *static* code
        // absorbs it for free — the slowed worker is simply treated as the
        // straggler — while rebalancing drags it back onto the critical
        // path. Adaptive re-coding is NOT a universal win.
        let cluster = cluster();
        let drift = RateDrift::StepChange {
            at: 15,
            factors: vec![1.0, 1.0, 1.0, 0.3],
        };
        let cfg = AdaptiveConfig {
            iterations: 60,
            reestimate_every: 5,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let (static_run, adaptive_run) =
            compare_static_vs_adaptive(&cluster, &drift, &cfg, &mut rng).unwrap();
        let t_static = static_run.metrics.avg_iteration_time().unwrap();
        let t_adaptive = adaptive_run.metrics.avg_iteration_time().unwrap();
        assert!(
            t_static <= t_adaptive * 1.05,
            "static ({t_static:.3}) should not lose to adaptive ({t_adaptive:.3}) \
             when the drift fits the straggler budget"
        );
    }

    #[test]
    fn adaptive_harmless_without_drift() {
        let cluster = cluster();
        let cfg = AdaptiveConfig {
            iterations: 40,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let (static_run, adaptive_run) =
            compare_static_vs_adaptive(&cluster, &RateDrift::None, &cfg, &mut rng).unwrap();
        let t_static = static_run.metrics.avg_iteration_time().unwrap();
        let t_adaptive = adaptive_run.metrics.avg_iteration_time().unwrap();
        // Within a few percent of each other (jitter noise only).
        assert!((t_adaptive - t_static).abs() / t_static < 0.10);
    }

    #[test]
    fn group_based_also_adapts() {
        let cluster = cluster();
        let drift = RateDrift::StepChange {
            at: 10,
            factors: vec![0.4, 1.0, 1.0, 1.0],
        };
        let cfg = AdaptiveConfig {
            kind: SchemeKind::GroupBased,
            iterations: 40,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_with_drift(&cluster, &drift, &cfg, &mut rng).unwrap();
        assert!(out.rebuilds > 0);
        assert_eq!(out.metrics.iterations(), 40);
    }

    #[test]
    fn rebuild_failures_keep_running() {
        // An adversarial drift that makes one worker dominate: Eq. 5 may
        // become infeasible, but the run must keep going on the old code.
        let cluster = ClusterSpec::from_vcpu_rows("skew", &[(3, 2), (1, 4)], 10.0).unwrap();
        let drift = RateDrift::StepChange {
            at: 2,
            factors: vec![0.05, 0.05, 0.05, 1.0],
        };
        let cfg = AdaptiveConfig {
            iterations: 20,
            reestimate_every: 2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let out = run_with_drift(&cluster, &drift, &cfg, &mut rng).unwrap();
        assert_eq!(out.metrics.iterations(), 20);
        assert!(
            out.rebuild_failures > 0,
            "expected infeasible rebuilds to be counted"
        );
    }
}
