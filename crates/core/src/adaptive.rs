//! Adaptive throughput re-estimation (an extension beyond the paper).
//!
//! The paper estimates worker throughput once, up front (§III-C:
//! "estimated by sampling"), and §V's group-based scheme hedges against
//! estimation *noise*. Neither handles estimation *drift* — a co-tenant VM
//! landing on a worker halfway through training permanently changes its
//! `c_i`, re-introducing exactly the consistent stragglers the allocation
//! was supposed to remove. The `hetgc-telemetry` subsystem closes the
//! loop:
//!
//! 1. every round's per-worker observations feed a `TelemetryHub`
//!    (EWMA estimator + arrival-history quantiles),
//! 2. a `DriftDetector` (CUSUM step detection + slow-drift EWMA
//!    divergence) flags when the live rates leave the allocation's noise
//!    envelope,
//! 3. on confirmed drift, the engine rebuilds the coding strategy from
//!    the fresh estimates (Eq. 5 → Eq. 6 → Alg. 1/3) and hot-swaps it.
//!
//! This module is the *timing-only comparison harness* over that
//! subsystem: [`run_with_drift`] / [`compare_static_vs_adaptive`] drive a
//! simulated drifting cluster through the unified
//! [`drive_timing_with`] loop with [`DriverConfig::adaptation`] wired to
//! an [`AdaptiveConfig`]. (For adaptation composed with *real SGD
//! training*, put an `AdaptationConfig` on the driver and a `RateDrift`
//! on `SimBspEngine::with_drift` — see `tests/adaptation.rs` and the
//! `telemetry_adaptation` example.)
//!
//! Rebuild cost is the Alg. 1 construction — microseconds (see the
//! `telemetry/recode_hot_swap` Criterion bench) against iteration times
//! of seconds, so re-coding "for free" is realistic; the data movement a
//! new allocation implies is the real-world cost and is *not* modelled
//! (documented limitation).

use hetgc_cluster::{ClusterSpec, StragglerModel};
use hetgc_coding::{CodecBackend, CodecSession, CodingError, GradientCodec};
use hetgc_sim::{simulate_bsp_iteration_in, BspIterationConfig, NetworkModel, RunMetrics};
use hetgc_telemetry::{AdaptationConfig, RecodeConfig, RoundSample};
use rand::{Rng, RngCore};

use crate::driver::{drive_timing_with, DriverConfig};
use crate::engine::{bsp_samples, EngineRound, RoundEngine};
use crate::scheme::{scheme_from_estimates, BoxError, SchemeBuilder, SchemeKind};

/// Moved to [`hetgc_sim::RateDrift`] so the simulation-layer engines can
/// consume it without a layering cycle; this alias keeps old import
/// paths compiling.
#[deprecated(
    since = "0.2.0",
    note = "moved to hetgc_sim::RateDrift (re-exported as hetgc::RateDrift)"
)]
pub type RateDrift = hetgc_sim::RateDrift;

/// Configuration of an adaptive-vs-static comparison run.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Which heterogeneity-aware scheme to run (HeterAware or GroupBased).
    pub kind: SchemeKind,
    /// Straggler tolerance `s`.
    pub stragglers: usize,
    /// Total iterations.
    pub iterations: usize,
    /// Dataset size in work units.
    pub samples: usize,
    /// Re-code cadence: the minimum rounds between rebuild attempts once
    /// the drift detector confirms (0 disables adaptation entirely — the
    /// static baseline). Before the telemetry subsystem this was a fixed
    /// rebuild-every-N schedule; the detector now decides *whether*, this
    /// knob only paces *how often*.
    pub reestimate_every: usize,
    /// EWMA smoothing factor for the throughput tracker.
    pub ewma_alpha: f64,
    /// Per-iteration compute jitter σ.
    pub jitter: f64,
    /// Transient straggler injection.
    pub straggler_model: StragglerModel,
    /// Codec backend for decoding ([`CodecBackend::Auto`]: group-aware
    /// for group-based schemes, exact otherwise). Rebuilt strategies are
    /// recompiled into the same backend.
    pub backend: CodecBackend,
}

impl Default for AdaptiveConfig {
    /// Heter-aware, s = 1, 60 iterations, ≥5 rounds between re-codes,
    /// α = 0.4.
    fn default() -> Self {
        AdaptiveConfig {
            kind: SchemeKind::HeterAware,
            stragglers: 1,
            iterations: 60,
            samples: 48,
            reestimate_every: 5,
            ewma_alpha: 0.4,
            jitter: 0.03,
            straggler_model: StragglerModel::None,
            backend: CodecBackend::Auto,
        }
    }
}

impl AdaptiveConfig {
    /// The telemetry pipeline this comparison harness runs
    /// (`None` when `reestimate_every == 0`: the static baseline).
    /// Deadline learning is off — the harness compares *re-coding*, so
    /// both runs keep the wait-for-everyone master.
    pub fn adaptation(&self) -> Option<AdaptationConfig> {
        (self.reestimate_every > 0).then(|| AdaptationConfig {
            ewma_alpha: self.ewma_alpha,
            learn_deadline: false,
            recode: RecodeConfig {
                confirm_rounds: 2,
                cooldown_rounds: self.reestimate_every,
            },
            ..AdaptationConfig::default()
        })
    }
}

/// Outcome of one policy (static or adaptive) under drift.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// Timing metrics of the run.
    pub metrics: RunMetrics,
    /// How many times the strategy was rebuilt.
    pub rebuilds: usize,
    /// How many rebuild attempts failed (infeasible estimates) and kept
    /// the previous strategy.
    pub rebuild_failures: usize,
}

/// The timing-only drifting-cluster [`RoundEngine`]: each round simulates
/// one BSP iteration at the drifted rates and emits the per-worker
/// [`RoundSample`]s the adaptation pipeline ingests; on confirmed drift
/// the driver calls back into [`RoundEngine::recode`], which rebuilds the
/// strategy from the fresh estimates and hot-swaps codec and session.
struct DriftEngine<'a> {
    drift: &'a hetgc_sim::RateDrift,
    cfg: &'a AdaptiveConfig,
    base: Vec<f64>,
    codec: hetgc_coding::AnyCodec,
    session: CodecSession,
    label: String,
    recodes: usize,
}

impl<'a> DriftEngine<'a> {
    fn new<R: Rng + ?Sized>(
        cluster: &ClusterSpec,
        drift: &'a hetgc_sim::RateDrift,
        cfg: &'a AdaptiveConfig,
        rng: &mut R,
    ) -> Result<Self, BoxError> {
        let scheme = SchemeBuilder::new(cluster, cfg.stragglers).build(cfg.kind, rng)?;
        // Compile once per strategy into the configured backend; the
        // session is recreated only on rebuild (a new code means new
        // rows), never per iteration.
        let codec = scheme.compile_backend(cfg.backend)?;
        let session = codec.session();
        Ok(DriftEngine {
            drift,
            cfg,
            base: cluster.throughputs(),
            codec,
            session,
            label: cfg.kind.name().to_owned(),
            recodes: 0,
        })
    }

    fn rebuild(&mut self, estimates: &[f64], rng: &mut dyn RngCore) -> Result<(), CodingError> {
        let scheme =
            scheme_from_estimates(self.cfg.kind, estimates, self.cfg.stragglers, None, rng)?;
        let codec = scheme.compile_backend(self.cfg.backend)?;
        self.session = codec.session();
        self.codec = codec;
        Ok(())
    }
}

impl RoundEngine for DriftEngine<'_> {
    fn workers(&self) -> usize {
        self.codec.workers()
    }

    fn partitions(&self) -> usize {
        self.codec.partitions()
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn round(
        &mut self,
        round: usize,
        _params: &[f64],
        rng: &mut dyn RngCore,
    ) -> Result<EngineRound, BoxError> {
        let iter = round - 1; // drift schedules are 0-based
        let m = self.base.len();
        let rates = self.drift.rates_at(&self.base, iter);
        let k = self.codec.partitions();
        let work_per_partition = self.cfg.samples as f64 / k as f64;
        let sim_cfg = BspIterationConfig::new(&rates)
            .work_per_partition(work_per_partition)
            .network(NetworkModel::lan())
            .compute_jitter(self.cfg.jitter);
        let events = self.cfg.straggler_model.sample_iteration(m, rng);
        let outcome =
            simulate_bsp_iteration_in(&self.codec, &sim_cfg, &events, rng, &mut self.session)?;

        let Some(t) = outcome.completion else {
            // Keep running on the current code: transient failures are
            // recorded, not fatal.
            return Ok(EngineRound::failed(false));
        };
        // The master sees compute durations; injected delay contaminates
        // them exactly as it would in production.
        let samples: Vec<RoundSample> = bsp_samples(&self.codec, &outcome, work_per_partition, t);
        Ok(EngineRound {
            elapsed: Some(t),
            at: None,
            gradient: None,
            residual: outcome.decode_residual,
            error_bound: None,
            results_used: outcome.decode_workers.len(),
            busy: outcome.busy,
            samples,
            alloc_bytes: 0,
            pool_hits: 0,
            bytes_sent: 0,
            bytes_received: 0,
            wire_error: 0.0,
            bytes_saved: 0,
            stop: false,
        })
    }

    fn supports_recode(&self) -> bool {
        true
    }

    fn recode(&mut self, estimates: &[f64], rng: &mut dyn RngCore) -> Result<bool, BoxError> {
        match self.rebuild(estimates, rng) {
            Ok(()) => {
                self.recodes += 1;
                Ok(true)
            }
            Err(_) => Ok(false), // infeasible estimates: keep the old code
        }
    }

    fn initial_estimates(&self) -> Option<Vec<f64>> {
        Some(self.base.clone())
    }
}

/// Runs one policy over a drifting cluster through the unified
/// [`drive_timing_with`] loop.
///
/// `reestimate_every = 0` gives the static baseline: the scheme is built
/// once from the *pre-drift* rates and never touched again.
///
/// # Errors
///
/// Propagates scheme-construction and simulator errors. A failed *rebuild*
/// is not an error — the run keeps the previous strategy and counts it in
/// [`AdaptiveOutcome::rebuild_failures`].
pub fn run_with_drift<R: Rng>(
    cluster: &ClusterSpec,
    drift: &hetgc_sim::RateDrift,
    cfg: &AdaptiveConfig,
    rng: &mut R,
) -> Result<AdaptiveOutcome, BoxError> {
    let mut engine = DriftEngine::new(cluster, drift, cfg, rng)?;
    let driver_cfg = DriverConfig {
        adaptation: cfg.adaptation(),
        ..DriverConfig::default()
    };
    let outcome = drive_timing_with(&mut engine, cfg.iterations, rng, &driver_cfg)?;
    let report = outcome.adaptation.unwrap_or_default();
    Ok(AdaptiveOutcome {
        metrics: outcome.metrics,
        rebuilds: report.recodes(),
        rebuild_failures: report.recode_failures,
    })
}

/// Convenience: static (never re-estimates) vs adaptive under the same
/// drift and seed-derived randomness.
///
/// # Errors
///
/// Propagates [`run_with_drift`] errors from either run.
pub fn compare_static_vs_adaptive<R: Rng>(
    cluster: &ClusterSpec,
    drift: &hetgc_sim::RateDrift,
    cfg: &AdaptiveConfig,
    rng: &mut R,
) -> Result<(AdaptiveOutcome, AdaptiveOutcome), BoxError> {
    let static_cfg = AdaptiveConfig {
        reestimate_every: 0,
        ..cfg.clone()
    };
    let static_run = run_with_drift(cluster, drift, &static_cfg, rng)?;
    let adaptive_run = run_with_drift(cluster, drift, cfg, rng)?;
    Ok((static_run, adaptive_run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgc_sim::RateDrift;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cluster() -> ClusterSpec {
        ClusterSpec::from_vcpu_rows("drifty", &[(1, 2), (1, 3), (1, 4), (1, 5)], 10.0).unwrap()
    }

    #[test]
    fn adaptive_beats_static_when_drift_exceeds_tolerance() {
        let cluster = cluster();
        // TWO workers lose 70 % of their speed: with s = 1 the code can
        // only discard one of them, so the static allocation is forced to
        // wait for a slowed worker every iteration; rebalancing fixes it.
        let drift = RateDrift::StepChange {
            at: 15,
            factors: vec![1.0, 1.0, 0.3, 0.3],
        };
        let cfg = AdaptiveConfig {
            iterations: 60,
            reestimate_every: 5,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let (static_run, adaptive_run) =
            compare_static_vs_adaptive(&cluster, &drift, &cfg, &mut rng).unwrap();
        let t_static = static_run.metrics.avg_iteration_time().unwrap();
        let t_adaptive = adaptive_run.metrics.avg_iteration_time().unwrap();
        assert!(adaptive_run.rebuilds > 0);
        assert_eq!(static_run.rebuilds, 0);
        assert!(
            t_adaptive < t_static * 0.90,
            "adaptive {t_adaptive:.3} should beat static {t_static:.3}"
        );
    }

    #[test]
    fn adaptive_beats_static_when_a_worker_speeds_up() {
        let cluster = cluster();
        // A worker gets 3× faster (co-tenant left): the static allocation
        // leaves its new capacity idle; rebalancing exploits it.
        let drift = RateDrift::StepChange {
            at: 10,
            factors: vec![3.0, 1.0, 1.0, 1.0],
        };
        let cfg = AdaptiveConfig {
            iterations: 60,
            reestimate_every: 5,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let (static_run, adaptive_run) =
            compare_static_vs_adaptive(&cluster, &drift, &cfg, &mut rng).unwrap();
        let t_static = static_run.metrics.avg_iteration_time().unwrap();
        let t_adaptive = adaptive_run.metrics.avg_iteration_time().unwrap();
        assert!(
            t_adaptive < t_static * 0.95,
            "adaptive {t_adaptive:.3} should exploit the speed-up (static {t_static:.3})"
        );
    }

    #[test]
    fn coding_absorbs_single_worker_drift_without_rebuild() {
        // The counter-intuitive finding this module documents: when only
        // ONE worker slows (within the s = 1 budget), the *static* code
        // absorbs it for free — the slowed worker is simply treated as the
        // straggler — while rebalancing drags it back onto the critical
        // path. Adaptive re-coding is NOT a universal win.
        let cluster = cluster();
        let drift = RateDrift::StepChange {
            at: 15,
            factors: vec![1.0, 1.0, 1.0, 0.3],
        };
        let cfg = AdaptiveConfig {
            iterations: 60,
            reestimate_every: 5,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let (static_run, adaptive_run) =
            compare_static_vs_adaptive(&cluster, &drift, &cfg, &mut rng).unwrap();
        let t_static = static_run.metrics.avg_iteration_time().unwrap();
        let t_adaptive = adaptive_run.metrics.avg_iteration_time().unwrap();
        assert!(
            t_static <= t_adaptive * 1.05,
            "static ({t_static:.3}) should not lose to adaptive ({t_adaptive:.3}) \
             when the drift fits the straggler budget"
        );
    }

    #[test]
    fn adaptive_harmless_without_drift() {
        let cluster = cluster();
        let cfg = AdaptiveConfig {
            iterations: 40,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let (static_run, adaptive_run) =
            compare_static_vs_adaptive(&cluster, &RateDrift::None, &cfg, &mut rng).unwrap();
        let t_static = static_run.metrics.avg_iteration_time().unwrap();
        let t_adaptive = adaptive_run.metrics.avg_iteration_time().unwrap();
        // The detector stays quiet under jitter-only noise, so no rebuild
        // ever fires and the runs differ only by their random draws.
        assert_eq!(adaptive_run.rebuilds, 0, "no drift, no re-code");
        assert!((t_adaptive - t_static).abs() / t_static < 0.10);
    }

    #[test]
    fn group_based_also_adapts() {
        let cluster = cluster();
        let drift = RateDrift::StepChange {
            at: 10,
            factors: vec![0.4, 1.0, 1.0, 1.0],
        };
        let cfg = AdaptiveConfig {
            kind: SchemeKind::GroupBased,
            iterations: 40,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_with_drift(&cluster, &drift, &cfg, &mut rng).unwrap();
        assert!(out.rebuilds > 0);
        assert_eq!(out.metrics.iterations(), 40);
    }

    #[test]
    fn rebuild_failures_keep_running() {
        // An adversarial drift that makes one worker dominate: Eq. 5 may
        // become infeasible, but the run must keep going on the old code.
        let cluster = ClusterSpec::from_vcpu_rows("skew", &[(3, 2), (1, 4)], 10.0).unwrap();
        let drift = RateDrift::StepChange {
            at: 2,
            factors: vec![0.05, 0.05, 0.05, 1.0],
        };
        let cfg = AdaptiveConfig {
            iterations: 20,
            reestimate_every: 2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let out = run_with_drift(&cluster, &drift, &cfg, &mut rng).unwrap();
        assert_eq!(out.metrics.iterations(), 20);
        assert!(
            out.rebuild_failures > 0,
            "expected infeasible rebuilds to be counted"
        );
    }

    #[test]
    fn static_baseline_has_no_adaptation() {
        let cfg = AdaptiveConfig {
            reestimate_every: 0,
            ..Default::default()
        };
        assert!(cfg.adaptation().is_none());
        let adaptive = AdaptiveConfig::default().adaptation().unwrap();
        assert!(!adaptive.learn_deadline);
        assert_eq!(adaptive.recode.cooldown_rounds, 5);
    }
}
