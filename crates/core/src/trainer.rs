//! Simulated-time distributed training: the legacy BSP (coded) and SSP
//! (asynchronous) entry points producing the loss-vs-wall-clock curves of
//! the paper's Fig. 4.
//!
//! Both functions are now thin wrappers over the unified round loop —
//! [`TrainDriver`](crate::TrainDriver) driving a
//! [`SimBspEngine`](crate::SimBspEngine) /
//! [`SimSspEngine`](crate::SimSspEngine) — kept (deprecated) for callers
//! of the original API; `tests/engine_equivalence.rs` pins their
//! trajectories to the new API's. The BSP path still runs *real* SGD:
//! every iteration computes the exact per-partition gradients, encodes
//! them with the scheme's rows, decodes at the simulator-chosen survivor
//! set, and verifies against the direct full-batch gradient — so the
//! accuracy-preservation claim of the paper (§II: coding keeps BSP
//! statistical efficiency) is checked on every step, not assumed. Only
//! the *clock* is simulated.

use hetgc_cluster::StragglerModel;
use hetgc_coding::{CodecBackend, EscalationPolicy};
use hetgc_ml::{Dataset, Model, Sgd};
use hetgc_sim::{NetworkModel, RunMetrics};
use rand::Rng;

use crate::driver::{DriverConfig, TrainDriver};
use crate::engine::{SimBspEngine, SimSspEngine};
use crate::scheme::{BoxError, SchemeInstance};

/// Shared knobs of the simulated trainers.
#[derive(Debug, Clone)]
pub struct SimTrainConfig {
    /// Number of BSP iterations (or SSP update events / m) to run.
    pub iterations: usize,
    /// SGD learning rate on the mean gradient.
    pub learning_rate: f64,
    /// Network model for gradient upload.
    pub network: NetworkModel,
    /// Gradient payload in bytes (≈ `num_params × 8` for f64 models).
    pub payload_bytes: f64,
    /// Relative σ of per-iteration multiplicative compute jitter.
    pub compute_jitter: f64,
    /// Transient straggler injection (BSP only).
    pub stragglers: StragglerModel,
    /// Evaluate the loss every this many updates (SSP evaluates less often
    /// because updates are per-worker; BSP evaluates every iteration).
    pub eval_every: usize,
    /// Which codec backend decodes each iteration (BSP only).
    /// [`CodecBackend::Auto`] picks the group-aware backend for
    /// group-based schemes and the generic exact backend otherwise;
    /// [`CodecBackend::Approx`] keeps training (with bounded gradient
    /// error) when more than `s` workers straggle.
    pub backend: CodecBackend,
}

impl Default for SimTrainConfig {
    /// 100 iterations, lr 0.1, LAN network, 4 KB payload, no jitter, no
    /// stragglers, evaluate every 8 updates, auto backend.
    fn default() -> Self {
        SimTrainConfig {
            iterations: 100,
            learning_rate: 0.1,
            network: NetworkModel::lan(),
            payload_bytes: 4096.0,
            compute_jitter: 0.0,
            stragglers: StragglerModel::None,
            eval_every: 8,
            backend: CodecBackend::Auto,
        }
    }
}

/// A labelled loss-vs-simulated-time curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LossCurve {
    /// Legend label (scheme name).
    pub label: String,
    /// `(simulated seconds, mean training loss)` points in time order.
    pub points: Vec<(f64, f64)>,
}

impl LossCurve {
    /// The last recorded loss, or `None` for an empty curve.
    pub fn final_loss(&self) -> Option<f64> {
        self.points.last().map(|&(_, l)| l)
    }

    /// First simulated time at which the loss drops to `target`, or
    /// `None` if it never does.
    pub fn time_to_loss(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, l)| l <= target)
            .map(|&(t, _)| t)
    }

    /// Total simulated duration covered by the curve.
    pub fn duration(&self) -> f64 {
        self.points.last().map(|&(t, _)| t).unwrap_or(0.0)
    }
}

/// Outcome of a simulated BSP training run.
#[derive(Debug, Clone)]
pub struct BspTrainOutcome {
    /// Loss curve over simulated time.
    pub curve: LossCurve,
    /// Timing metrics (avg iteration time, resource usage — Figs. 2/3/5).
    pub metrics: RunMetrics,
    /// Final parameters.
    pub params: Vec<f64>,
    /// `true` if training stalled on an undecodable iteration (naive +
    /// fault).
    pub stalled: bool,
    /// How many iterations decoded through the approximate fallback —
    /// always 0 for exact backends. Counts every fallback-decoded round
    /// (any positive residual, however numerically small).
    pub approx_iterations: usize,
}

/// Runs coded BSP SGD over a simulated cluster.
///
/// `rates[w]` is worker `w`'s true throughput in samples/second.
///
/// Deprecated: this is a thin wrapper over the unified loop — build a
/// [`SimBspEngine`] and drive it through [`TrainDriver`] for the full
/// [`TrainOutcome`](crate::TrainOutcome) report, per-round escalation and
/// residual-aware step scaling. The wrapper disables step scaling to
/// preserve the legacy full-step behaviour on approximate rounds.
///
/// # Errors
///
/// Fails on configuration mismatches (rates length, partitioning) and
/// propagates simulator errors. An *undecodable iteration* is not an
/// error: training stops and the outcome is flagged
/// [`BspTrainOutcome::stalled`].
#[deprecated(
    since = "0.2.0",
    note = "drive a SimBspEngine through TrainDriver instead"
)]
pub fn train_bsp_sim<M: Model + ?Sized, R: Rng>(
    scheme: &SchemeInstance,
    model: &M,
    data: &Dataset,
    rates: &[f64],
    cfg: &SimTrainConfig,
    rng: &mut R,
) -> Result<BspTrainOutcome, BoxError> {
    let mut engine = SimBspEngine::new(
        scheme,
        model,
        data,
        rates,
        cfg,
        EscalationPolicy::follow_backend(),
    )?;
    let out = TrainDriver::new(model, data, Sgd::new(cfg.learning_rate))
        .with_config(DriverConfig {
            eval_every: 1,
            residual_step_scaling: false,
            adaptation: None,
            job_id: None,
        })
        .run(&mut engine, cfg.iterations, rng)?;
    Ok(BspTrainOutcome {
        curve: out.curve,
        metrics: out.metrics,
        params: out.params,
        stalled: out.stalled,
        approx_iterations: out.approx_rounds,
    })
}

/// Runs SSP (stale synchronous parallel) SGD over a simulated cluster —
/// the asynchronous baseline of Fig. 4.
///
/// Each worker owns `1/m` of the data, computes its shard gradient on the
/// parameters it saw when it last reported (true staleness dynamics), and
/// the master applies `θ ← θ − lr·g_shard/N` per update event. The run
/// lasts `cfg.iterations × m` update events so the *sample throughput*
/// matches a BSP run of `cfg.iterations` iterations.
///
/// Deprecated: this is a thin wrapper over the unified loop — build a
/// [`SimSspEngine::shard`] and drive it through [`TrainDriver`]
/// (`SimSspEngine::coded` adds real codec decoding to SSP).
///
/// # Errors
///
/// Fails on configuration mismatches; propagates engine errors.
#[deprecated(
    since = "0.2.0",
    note = "drive a SimSspEngine through TrainDriver instead"
)]
pub fn train_ssp_sim<M: Model + ?Sized, R: Rng>(
    model: &M,
    data: &Dataset,
    rates: &[f64],
    staleness: usize,
    cfg: &SimTrainConfig,
    rng: &mut R,
) -> Result<LossCurve, BoxError> {
    let mut engine = SimSspEngine::shard(model, data, rates, staleness, cfg)?;
    let out = TrainDriver::new(model, data, Sgd::new(cfg.learning_rate))
        .with_config(DriverConfig {
            eval_every: cfg.eval_every,
            residual_step_scaling: false,
            adaptation: None,
            job_id: None,
        })
        .run(&mut engine, cfg.iterations * rates.len(), rng)?;
    Ok(out.curve)
}

#[cfg(test)]
#[allow(deprecated)] // exercises the legacy wrappers on purpose
mod tests {
    use super::*;
    use crate::scheme::{SchemeBuilder, SchemeKind};
    use hetgc_cluster::{ClusterSpec, StragglerModel};
    use hetgc_ml::{synthetic, LinearRegression, SoftmaxRegression};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn small_cluster() -> ClusterSpec {
        // 1/2/3/4 vCPUs: heterogeneous enough that the balanced allocation
        // strictly beats uniform schemes (2·m·min_c < Σc).
        ClusterSpec::from_vcpu_rows("mini", &[(1, 1), (1, 2), (1, 3), (1, 4)], 50.0).unwrap()
    }

    #[test]
    fn bsp_training_reduces_loss_for_all_schemes() {
        let cluster = small_cluster();
        let rates = cluster.throughputs();
        let mut r = rng(1);
        let data = synthetic::linear_regression(80, 3, 0.01, &mut r);
        let model = LinearRegression::new(3);
        let cfg = SimTrainConfig {
            iterations: 40,
            learning_rate: 0.2,
            ..SimTrainConfig::default()
        };
        for kind in SchemeKind::PAPER {
            let scheme = SchemeBuilder::new(&cluster, 1).build(kind, &mut r).unwrap();
            let out = train_bsp_sim(&scheme, &model, &data, &rates, &cfg, &mut r).unwrap();
            assert!(!out.stalled, "{kind} stalled");
            let first = out.curve.points[0].1;
            let last = out.curve.final_loss().unwrap();
            assert!(last < first, "{kind}: {first} → {last}");
            assert!(out.metrics.iterations() == 40);
        }
    }

    #[test]
    fn bsp_curves_share_loss_trajectory_but_not_time() {
        // Exact decoding ⇒ identical per-iteration losses across schemes
        // (same seed for init); only the time axis differs.
        let cluster = small_cluster();
        let rates = cluster.throughputs();
        let data = synthetic::linear_regression(80, 3, 0.01, &mut rng(42));
        let model = LinearRegression::new(3);
        let cfg = SimTrainConfig {
            iterations: 15,
            ..SimTrainConfig::default()
        };

        let mut build_rng = rng(7);
        let naive = SchemeBuilder::new(&cluster, 1)
            .build(SchemeKind::Naive, &mut build_rng)
            .unwrap();
        let heter = SchemeBuilder::new(&cluster, 1)
            .build(SchemeKind::HeterAware, &mut build_rng)
            .unwrap();

        let out_a = train_bsp_sim(&naive, &model, &data, &rates, &cfg, &mut rng(5)).unwrap();
        let out_b = train_bsp_sim(&heter, &model, &data, &rates, &cfg, &mut rng(5)).unwrap();
        for ((_, la), (_, lb)) in out_a.curve.points.iter().zip(&out_b.curve.points) {
            assert!(
                (la - lb).abs() < 1e-9,
                "loss trajectories must match: {la} vs {lb}"
            );
        }
        // Heter-aware is faster per iteration on this heterogeneous cluster.
        assert!(out_b.curve.duration() < out_a.curve.duration());
    }

    #[test]
    fn bsp_naive_stalls_on_failure() {
        let cluster = small_cluster();
        let rates = cluster.throughputs();
        let data = synthetic::linear_regression(40, 2, 0.01, &mut rng(2));
        let model = LinearRegression::new(2);
        let cfg = SimTrainConfig {
            iterations: 10,
            stragglers: StragglerModel::Failures { workers: vec![0] },
            ..SimTrainConfig::default()
        };
        let scheme = SchemeBuilder::new(&cluster, 1)
            .build(SchemeKind::Naive, &mut rng(3))
            .unwrap();
        let out = train_bsp_sim(&scheme, &model, &data, &rates, &cfg, &mut rng(4)).unwrap();
        assert!(out.stalled);
        assert!(out.curve.points.is_empty());
        assert_eq!(out.metrics.failed_iterations(), 1);
    }

    #[test]
    fn bsp_heter_aware_survives_failure() {
        let cluster = small_cluster();
        let rates = cluster.throughputs();
        let data = synthetic::linear_regression(40, 2, 0.01, &mut rng(5));
        let model = LinearRegression::new(2);
        let cfg = SimTrainConfig {
            iterations: 10,
            stragglers: StragglerModel::Failures { workers: vec![0] },
            ..SimTrainConfig::default()
        };
        let scheme = SchemeBuilder::new(&cluster, 1)
            .build(SchemeKind::HeterAware, &mut rng(6))
            .unwrap();
        let out = train_bsp_sim(&scheme, &model, &data, &rates, &cfg, &mut rng(7)).unwrap();
        assert!(!out.stalled);
        assert_eq!(out.curve.points.len(), 10);
    }

    #[test]
    fn ssp_trains_and_is_gated() {
        let cluster = small_cluster();
        let rates = cluster.throughputs();
        let mut r = rng(8);
        let data = synthetic::gaussian_blobs(60, 2, 3, 5.0, &mut r);
        let model = SoftmaxRegression::new(2, 3);
        let cfg = SimTrainConfig {
            iterations: 30,
            learning_rate: 0.3,
            eval_every: 4,
            ..SimTrainConfig::default()
        };
        let curve = train_ssp_sim(&model, &data, &rates, 3, &cfg, &mut r).unwrap();
        assert!(!curve.points.is_empty());
        let first = curve.points[0].1;
        let last = curve.final_loss().unwrap();
        assert!(
            last < first,
            "SSP should still make progress: {first} → {last}"
        );
    }

    #[test]
    fn curve_helpers() {
        let c = LossCurve {
            label: "x".into(),
            points: vec![(1.0, 0.9), (2.0, 0.5), (3.0, 0.2)],
        };
        assert_eq!(c.final_loss(), Some(0.2));
        assert_eq!(c.time_to_loss(0.5), Some(2.0));
        assert_eq!(c.time_to_loss(0.1), None);
        assert_eq!(c.duration(), 3.0);
        let empty = LossCurve {
            label: "e".into(),
            points: vec![],
        };
        assert_eq!(empty.final_loss(), None);
        assert_eq!(empty.duration(), 0.0);
    }

    #[test]
    fn bsp_rejects_mismatched_rates() {
        let cluster = small_cluster();
        let data = synthetic::linear_regression(40, 2, 0.01, &mut rng(9));
        let model = LinearRegression::new(2);
        let scheme = SchemeBuilder::new(&cluster, 1)
            .build(SchemeKind::Naive, &mut rng(10))
            .unwrap();
        let cfg = SimTrainConfig::default();
        assert!(train_bsp_sim(&scheme, &model, &data, &[1.0], &cfg, &mut rng(11)).is_err());
    }
}
