//! Simulated-time distributed training: BSP (coded) and SSP (asynchronous)
//! trainers producing the loss-vs-wall-clock curves of the paper's Fig. 4.
//!
//! The BSP trainer runs *real* SGD: every iteration computes the exact
//! per-partition gradients, encodes them with the scheme's rows, decodes
//! at the simulator-chosen survivor set, and verifies against the direct
//! full-batch gradient — so the accuracy-preservation claim of the paper
//! (§II: coding keeps BSP statistical efficiency) is checked on every
//! step, not assumed. Only the *clock* is simulated.

use hetgc_cluster::{PartitionAssignment, StragglerModel};
use hetgc_coding::{CodecBackend, GradientCodec};
use hetgc_ml::{partial_gradients, Dataset, Model};
use hetgc_sim::{
    simulate_bsp_iteration_in, BspIterationConfig, NetworkModel, RunMetrics, SspEngine,
};
use rand::Rng;

use crate::scheme::{BoxError, SchemeInstance};

/// Shared knobs of the simulated trainers.
#[derive(Debug, Clone)]
pub struct SimTrainConfig {
    /// Number of BSP iterations (or SSP update events / m) to run.
    pub iterations: usize,
    /// SGD learning rate on the mean gradient.
    pub learning_rate: f64,
    /// Network model for gradient upload.
    pub network: NetworkModel,
    /// Gradient payload in bytes (≈ `num_params × 8` for f64 models).
    pub payload_bytes: f64,
    /// Relative σ of per-iteration multiplicative compute jitter.
    pub compute_jitter: f64,
    /// Transient straggler injection (BSP only).
    pub stragglers: StragglerModel,
    /// Evaluate the loss every this many updates (SSP evaluates less often
    /// because updates are per-worker; BSP evaluates every iteration).
    pub eval_every: usize,
    /// Which codec backend decodes each iteration (BSP only).
    /// [`CodecBackend::Auto`] picks the group-aware backend for
    /// group-based schemes and the generic exact backend otherwise;
    /// [`CodecBackend::Approx`] keeps training (with bounded gradient
    /// error) when more than `s` workers straggle.
    pub backend: CodecBackend,
}

impl Default for SimTrainConfig {
    /// 100 iterations, lr 0.1, LAN network, 4 KB payload, no jitter, no
    /// stragglers, evaluate every 8 updates, auto backend.
    fn default() -> Self {
        SimTrainConfig {
            iterations: 100,
            learning_rate: 0.1,
            network: NetworkModel::lan(),
            payload_bytes: 4096.0,
            compute_jitter: 0.0,
            stragglers: StragglerModel::None,
            eval_every: 8,
            backend: CodecBackend::Auto,
        }
    }
}

/// A labelled loss-vs-simulated-time curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LossCurve {
    /// Legend label (scheme name).
    pub label: String,
    /// `(simulated seconds, mean training loss)` points in time order.
    pub points: Vec<(f64, f64)>,
}

impl LossCurve {
    /// The last recorded loss, or `None` for an empty curve.
    pub fn final_loss(&self) -> Option<f64> {
        self.points.last().map(|&(_, l)| l)
    }

    /// First simulated time at which the loss drops to `target`, or
    /// `None` if it never does.
    pub fn time_to_loss(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, l)| l <= target)
            .map(|&(t, _)| t)
    }

    /// Total simulated duration covered by the curve.
    pub fn duration(&self) -> f64 {
        self.points.last().map(|&(t, _)| t).unwrap_or(0.0)
    }
}

/// Outcome of a simulated BSP training run.
#[derive(Debug, Clone)]
pub struct BspTrainOutcome {
    /// Loss curve over simulated time.
    pub curve: LossCurve,
    /// Timing metrics (avg iteration time, resource usage — Figs. 2/3/5).
    pub metrics: RunMetrics,
    /// Final parameters.
    pub params: Vec<f64>,
    /// `true` if training stalled on an undecodable iteration (naive +
    /// fault).
    pub stalled: bool,
    /// How many iterations decoded through the approximate fallback —
    /// always 0 for exact backends. Counts every fallback-decoded round
    /// (any positive residual, however numerically small).
    pub approx_iterations: usize,
}

/// Runs coded BSP SGD over a simulated cluster.
///
/// `rates[w]` is worker `w`'s true throughput in samples/second.
///
/// # Errors
///
/// Fails on configuration mismatches (rates length, partitioning) and
/// propagates simulator errors. An *undecodable iteration* is not an
/// error: training stops and the outcome is flagged
/// [`BspTrainOutcome::stalled`].
pub fn train_bsp_sim<M: Model + ?Sized, R: Rng>(
    scheme: &SchemeInstance,
    model: &M,
    data: &Dataset,
    rates: &[f64],
    cfg: &SimTrainConfig,
    rng: &mut R,
) -> Result<BspTrainOutcome, BoxError> {
    // Compile once into the configured backend: sparse per-worker supports
    // for encoding, cached decode plans, and one streaming session reused
    // (reset, not reallocated) across all iterations.
    let codec = scheme.compile_backend(cfg.backend)?;
    let mut session = codec.session();
    let m = codec.workers();
    let k = codec.partitions();
    if rates.len() != m {
        return Err(format!("rates len {} != m={m}", rates.len()).into());
    }
    let assignment = PartitionAssignment::even(data.len(), k)?;
    let ranges: Vec<(usize, usize)> = assignment.iter().collect();
    let n = data.len() as f64;
    let work_per_partition = n / k as f64;

    let mut params = model.init_params(rng);
    let mut metrics = RunMetrics::new();
    let mut curve = LossCurve {
        label: scheme.kind.name().to_owned(),
        points: Vec::new(),
    };
    let mut clock = 0.0;
    let mut stalled = false;
    let mut approx_iterations = 0;

    for _ in 0..cfg.iterations {
        let events = cfg.stragglers.sample_iteration(m, rng);
        let sim_cfg = BspIterationConfig::new(rates)
            .work_per_partition(work_per_partition)
            .network(cfg.network)
            .payload_bytes(cfg.payload_bytes)
            .compute_jitter(cfg.compute_jitter);
        let outcome = simulate_bsp_iteration_in(&codec, &sim_cfg, &events, rng, &mut session)?;
        let Some(iter_time) = outcome.completion else {
            metrics.record(&outcome);
            stalled = true;
            break;
        };
        metrics.record(&outcome);
        clock += iter_time;
        if outcome.is_approximate() {
            approx_iterations += 1;
        }

        // Real coded gradient computation: partials → sparse encode per
        // decoding worker → combine with the decode vector.
        let partials = partial_gradients(model, &params, data, &ranges);
        let mut gradient = vec![0.0; model.num_params()];
        let mut coded = Vec::new();
        for &w in &outcome.decode_workers {
            codec.encode_into(w, &partials, &mut coded)?;
            let coef = outcome.decode_vector[w];
            for (g, c) in gradient.iter_mut().zip(&coded) {
                *g += coef * c;
            }
        }
        // Approximate rounds legitimately deviate from the direct gradient
        // (bounded by residual · ‖(‖g_j‖)_j‖₂); only exact rounds must
        // reproduce it.
        debug_assert!(
            outcome.is_approximate() || {
                let direct = model.gradient(&params, data, (0, data.len()));
                gradient
                    .iter()
                    .zip(&direct)
                    .all(|(a, b)| (a - b).abs() <= 1e-6 * (1.0 + b.abs()))
            },
            "decoded gradient deviates from direct full-batch gradient"
        );
        for g in &mut gradient {
            *g /= n;
        }
        for (p, g) in params.iter_mut().zip(&gradient) {
            *p -= cfg.learning_rate * g;
        }
        let loss = model.loss(&params, data, (0, data.len())) / n;
        curve.points.push((clock, loss));
    }

    Ok(BspTrainOutcome {
        curve,
        metrics,
        params,
        stalled,
        approx_iterations,
    })
}

/// Runs SSP (stale synchronous parallel) SGD over a simulated cluster —
/// the asynchronous baseline of Fig. 4.
///
/// Each worker owns `1/m` of the data, computes its shard gradient on the
/// parameters it saw when it last reported (true staleness dynamics), and
/// the master applies `θ ← θ − lr·g_shard/N` per update event. The run
/// lasts `cfg.iterations × m` update events so the *sample throughput*
/// matches a BSP run of `cfg.iterations` iterations.
///
/// # Errors
///
/// Fails on configuration mismatches; propagates engine errors.
pub fn train_ssp_sim<M: Model + ?Sized, R: Rng>(
    model: &M,
    data: &Dataset,
    rates: &[f64],
    staleness: usize,
    cfg: &SimTrainConfig,
    rng: &mut R,
) -> Result<LossCurve, BoxError> {
    let m = rates.len();
    if m == 0 {
        return Err("no workers".into());
    }
    let assignment = PartitionAssignment::even(data.len(), m)?;
    let comm = cfg.network.transfer_time(cfg.payload_bytes);
    let iter_times: Vec<f64> = (0..m)
        .map(|w| {
            let (lo, hi) = assignment.range(w).expect("w < m");
            (hi - lo) as f64 / rates[w] + comm
        })
        .collect();
    let mut engine = SspEngine::new(iter_times, staleness)?;

    let n = data.len() as f64;
    let mut params = model.init_params(rng);
    // Per-worker stale snapshots: what the worker is computing on.
    let mut snapshots: Vec<Vec<f64>> = vec![params.clone(); m];
    let mut curve = LossCurve {
        label: "ssp".to_owned(),
        points: Vec::new(),
    };

    let total_updates = cfg.iterations * m;
    for step in 1..=total_updates {
        let Some(event) = engine.next_event() else {
            break;
        };
        let w = event.worker;
        let (lo, hi) = assignment.range(w).expect("w < m");
        let grad = model.gradient(&snapshots[w], data, (lo, hi));
        for (p, g) in params.iter_mut().zip(&grad) {
            *p -= cfg.learning_rate * g / n;
        }
        // The worker immediately begins its next iteration on the params
        // it now observes.
        snapshots[w] = params.clone();
        if step % cfg.eval_every.max(1) == 0 || step == total_updates {
            let loss = model.loss(&params, data, (0, data.len())) / n;
            curve.points.push((event.time, loss));
        }
    }
    Ok(curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{SchemeBuilder, SchemeKind};
    use hetgc_cluster::{ClusterSpec, StragglerModel};
    use hetgc_ml::{synthetic, LinearRegression, SoftmaxRegression};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn small_cluster() -> ClusterSpec {
        // 1/2/3/4 vCPUs: heterogeneous enough that the balanced allocation
        // strictly beats uniform schemes (2·m·min_c < Σc).
        ClusterSpec::from_vcpu_rows("mini", &[(1, 1), (1, 2), (1, 3), (1, 4)], 50.0).unwrap()
    }

    #[test]
    fn bsp_training_reduces_loss_for_all_schemes() {
        let cluster = small_cluster();
        let rates = cluster.throughputs();
        let mut r = rng(1);
        let data = synthetic::linear_regression(80, 3, 0.01, &mut r);
        let model = LinearRegression::new(3);
        let cfg = SimTrainConfig {
            iterations: 40,
            learning_rate: 0.2,
            ..SimTrainConfig::default()
        };
        for kind in SchemeKind::PAPER {
            let scheme = SchemeBuilder::new(&cluster, 1).build(kind, &mut r).unwrap();
            let out = train_bsp_sim(&scheme, &model, &data, &rates, &cfg, &mut r).unwrap();
            assert!(!out.stalled, "{kind} stalled");
            let first = out.curve.points[0].1;
            let last = out.curve.final_loss().unwrap();
            assert!(last < first, "{kind}: {first} → {last}");
            assert!(out.metrics.iterations() == 40);
        }
    }

    #[test]
    fn bsp_curves_share_loss_trajectory_but_not_time() {
        // Exact decoding ⇒ identical per-iteration losses across schemes
        // (same seed for init); only the time axis differs.
        let cluster = small_cluster();
        let rates = cluster.throughputs();
        let data = synthetic::linear_regression(80, 3, 0.01, &mut rng(42));
        let model = LinearRegression::new(3);
        let cfg = SimTrainConfig {
            iterations: 15,
            ..SimTrainConfig::default()
        };

        let mut build_rng = rng(7);
        let naive = SchemeBuilder::new(&cluster, 1)
            .build(SchemeKind::Naive, &mut build_rng)
            .unwrap();
        let heter = SchemeBuilder::new(&cluster, 1)
            .build(SchemeKind::HeterAware, &mut build_rng)
            .unwrap();

        let out_a = train_bsp_sim(&naive, &model, &data, &rates, &cfg, &mut rng(5)).unwrap();
        let out_b = train_bsp_sim(&heter, &model, &data, &rates, &cfg, &mut rng(5)).unwrap();
        for ((_, la), (_, lb)) in out_a.curve.points.iter().zip(&out_b.curve.points) {
            assert!(
                (la - lb).abs() < 1e-9,
                "loss trajectories must match: {la} vs {lb}"
            );
        }
        // Heter-aware is faster per iteration on this heterogeneous cluster.
        assert!(out_b.curve.duration() < out_a.curve.duration());
    }

    #[test]
    fn bsp_naive_stalls_on_failure() {
        let cluster = small_cluster();
        let rates = cluster.throughputs();
        let data = synthetic::linear_regression(40, 2, 0.01, &mut rng(2));
        let model = LinearRegression::new(2);
        let cfg = SimTrainConfig {
            iterations: 10,
            stragglers: StragglerModel::Failures { workers: vec![0] },
            ..SimTrainConfig::default()
        };
        let scheme = SchemeBuilder::new(&cluster, 1)
            .build(SchemeKind::Naive, &mut rng(3))
            .unwrap();
        let out = train_bsp_sim(&scheme, &model, &data, &rates, &cfg, &mut rng(4)).unwrap();
        assert!(out.stalled);
        assert!(out.curve.points.is_empty());
        assert_eq!(out.metrics.failed_iterations(), 1);
    }

    #[test]
    fn bsp_heter_aware_survives_failure() {
        let cluster = small_cluster();
        let rates = cluster.throughputs();
        let data = synthetic::linear_regression(40, 2, 0.01, &mut rng(5));
        let model = LinearRegression::new(2);
        let cfg = SimTrainConfig {
            iterations: 10,
            stragglers: StragglerModel::Failures { workers: vec![0] },
            ..SimTrainConfig::default()
        };
        let scheme = SchemeBuilder::new(&cluster, 1)
            .build(SchemeKind::HeterAware, &mut rng(6))
            .unwrap();
        let out = train_bsp_sim(&scheme, &model, &data, &rates, &cfg, &mut rng(7)).unwrap();
        assert!(!out.stalled);
        assert_eq!(out.curve.points.len(), 10);
    }

    #[test]
    fn ssp_trains_and_is_gated() {
        let cluster = small_cluster();
        let rates = cluster.throughputs();
        let mut r = rng(8);
        let data = synthetic::gaussian_blobs(60, 2, 3, 5.0, &mut r);
        let model = SoftmaxRegression::new(2, 3);
        let cfg = SimTrainConfig {
            iterations: 30,
            learning_rate: 0.3,
            eval_every: 4,
            ..SimTrainConfig::default()
        };
        let curve = train_ssp_sim(&model, &data, &rates, 3, &cfg, &mut r).unwrap();
        assert!(!curve.points.is_empty());
        let first = curve.points[0].1;
        let last = curve.final_loss().unwrap();
        assert!(
            last < first,
            "SSP should still make progress: {first} → {last}"
        );
    }

    #[test]
    fn curve_helpers() {
        let c = LossCurve {
            label: "x".into(),
            points: vec![(1.0, 0.9), (2.0, 0.5), (3.0, 0.2)],
        };
        assert_eq!(c.final_loss(), Some(0.2));
        assert_eq!(c.time_to_loss(0.5), Some(2.0));
        assert_eq!(c.time_to_loss(0.1), None);
        assert_eq!(c.duration(), 3.0);
        let empty = LossCurve {
            label: "e".into(),
            points: vec![],
        };
        assert_eq!(empty.final_loss(), None);
        assert_eq!(empty.duration(), 0.0);
    }

    #[test]
    fn bsp_rejects_mismatched_rates() {
        let cluster = small_cluster();
        let data = synthetic::linear_regression(40, 2, 0.01, &mut rng(9));
        let model = LinearRegression::new(2);
        let scheme = SchemeBuilder::new(&cluster, 1)
            .build(SchemeKind::Naive, &mut rng(10))
            .unwrap();
        let cfg = SimTrainConfig::default();
        assert!(train_bsp_sim(&scheme, &model, &data, &[1.0], &cfg, &mut rng(11)).is_err());
    }
}
