use std::error::Error;
use std::fmt;

/// Errors produced by `hetgc-linalg` routines.
///
/// Every fallible public function in this crate returns
/// `Result<_, LinalgError>`. The variants carry enough context to diagnose
/// shape bugs in callers (the most common failure in coding-matrix
/// construction) without panicking inside library code.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    ///
    /// `op` names the operation, and the two `(rows, cols)` pairs are the
    /// offending shapes.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        left: (usize, usize),
        /// Shape of the right-hand operand.
        right: (usize, usize),
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Name of the operation that failed.
        op: &'static str,
        /// Actual shape.
        shape: (usize, usize),
    },
    /// A matrix was singular (or numerically singular) where an invertible
    /// one was required, e.g. in [`crate::Matrix::solve`].
    Singular {
        /// The pivot magnitude that fell below tolerance.
        pivot: f64,
    },
    /// A dimension was zero where a non-empty matrix was required.
    Empty {
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// Row data passed to a constructor had inconsistent lengths.
    RaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Length of the first offending row.
        found: usize,
        /// Index of the first offending row.
        row: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
        /// Which axis (`"row"` or `"col"`).
        axis: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { op, shape } => {
                write!(
                    f,
                    "{op} requires a square matrix, got {}x{}",
                    shape.0, shape.1
                )
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (pivot magnitude {pivot:.3e})")
            }
            LinalgError::Empty { op } => write!(f, "{op} requires a non-empty matrix"),
            LinalgError::RaggedRows {
                expected,
                found,
                row,
            } => write!(
                f,
                "ragged row data: row {row} has length {found}, expected {expected}"
            ),
            LinalgError::IndexOutOfBounds { index, bound, axis } => {
                write!(f, "{axis} index {index} out of bounds (must be < {bound})")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "mul",
            left: (2, 3),
            right: (4, 5),
        };
        assert_eq!(e.to_string(), "shape mismatch in mul: 2x3 vs 4x5");
    }

    #[test]
    fn display_not_square() {
        let e = LinalgError::NotSquare {
            op: "inverse",
            shape: (2, 3),
        };
        assert!(e.to_string().contains("square"));
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn display_singular_contains_pivot() {
        let e = LinalgError::Singular { pivot: 1e-18 };
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn display_empty() {
        let e = LinalgError::Empty { op: "lu" };
        assert!(e.to_string().contains("non-empty"));
    }

    #[test]
    fn display_ragged() {
        let e = LinalgError::RaggedRows {
            expected: 3,
            found: 2,
            row: 1,
        };
        assert!(e.to_string().contains("row 1"));
    }

    #[test]
    fn display_index() {
        let e = LinalgError::IndexOutOfBounds {
            index: 9,
            bound: 4,
            axis: "row",
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
