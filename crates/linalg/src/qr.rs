// Index-style loops below mirror the textbook elimination algorithms;
// iterator adaptors would obscure the pivot arithmetic.
#![allow(clippy::needless_range_loop)]

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Householder QR decomposition `A = Q·R` for `rows ≥ 1, cols ≥ 1`.
///
/// Gradient-coding decoders need least-squares solves: given the rows of `B`
/// held by surviving workers (a generally non-square, full-row-rank system),
/// find `a` with `aᵀ·B_I = 1`. We solve the transposed system
/// `B_Iᵀ·a = 1ᵀ` in the least-squares sense and check the residual; a
/// near-zero residual certifies decodability (Condition C1 for that
/// survivor set).
///
/// # Example
///
/// ```
/// use hetgc_linalg::Matrix;
///
/// # fn main() -> Result<(), hetgc_linalg::LinalgError> {
/// // Overdetermined: fit x to minimize |Ax - b|.
/// let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]])?;
/// let qr = a.qr()?;
/// let x = qr.solve_least_squares(&[6.0, 0.0, 0.0])?;
/// assert_eq!(x.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors stored below the diagonal; R on/above.
    qr: Matrix,
    /// The diagonal of R (kept separately for clarity).
    r_diag: Vec<f64>,
}

impl Qr {
    /// Factors `a`. Called via [`Matrix::qr`].
    ///
    /// # Errors
    ///
    /// [`LinalgError::Empty`] if either dimension is zero.
    pub(crate) fn new(a: &Matrix) -> Result<Self, LinalgError> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty { op: "qr" });
        }
        let mut qr = a.clone();
        let steps = m.min(n);
        let mut r_diag = vec![0.0; steps];

        for k in 0..steps {
            // Compute the norm of the k-th column below (and including) row k.
            let mut norm = 0.0;
            for i in k..m {
                norm = f64::hypot(norm, qr[(i, k)]);
            }
            if norm == 0.0 {
                r_diag[k] = 0.0;
                continue;
            }
            // Choose sign to avoid cancellation.
            if qr[(k, k)] < 0.0 {
                norm = -norm;
            }
            for i in k..m {
                qr[(i, k)] /= norm;
            }
            qr[(k, k)] += 1.0;
            // Apply the Householder reflection to the remaining columns.
            for j in (k + 1)..n {
                let mut s = 0.0;
                for i in k..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s = -s / qr[(k, k)];
                for i in k..m {
                    let update = s * qr[(i, k)];
                    qr[(i, j)] += update;
                }
            }
            r_diag[k] = -norm;
        }

        Ok(Qr { qr, r_diag })
    }

    /// Number of rows of the factored matrix.
    pub fn nrows(&self) -> usize {
        self.qr.nrows()
    }

    /// Number of columns of the factored matrix.
    pub fn ncols(&self) -> usize {
        self.qr.ncols()
    }

    /// Returns `true` if R has a (numerically) zero diagonal entry, i.e. the
    /// columns of `A` are linearly dependent.
    pub fn is_rank_deficient(&self, tol: f64) -> bool {
        self.r_diag.iter().any(|d| d.abs() <= tol)
    }

    /// Solves `min_x |A·x − b|₂` for `m ≥ n` systems.
    ///
    /// For square non-singular `A` this is an exact solve.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `b.len() != self.nrows()` or the
    ///   system is underdetermined (`m < n`) — use
    ///   [`solve_min_norm`] semantics via transposition instead.
    /// * [`LinalgError::Singular`] if the columns are linearly dependent.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (m, n) = (self.nrows(), self.ncols());
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve",
                left: (m, n),
                right: (b.len(), 1),
            });
        }
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve_underdetermined",
                left: (m, n),
                right: (b.len(), 1),
            });
        }
        if self.is_rank_deficient(1e-12) {
            return Err(LinalgError::Singular { pivot: 0.0 });
        }
        // y = Qᵀ·b, applied reflection by reflection.
        let mut y = b.to_vec();
        for k in 0..n {
            let mut s = 0.0;
            for i in k..m {
                s += self.qr[(i, k)] * y[i];
            }
            s = -s / self.qr[(k, k)];
            for i in k..m {
                y[i] += s * self.qr[(i, k)];
            }
        }
        // Back substitution on R.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            x[i] = acc / self.r_diag[i];
        }
        Ok(x)
    }

    /// Residual norm `|A·x − b|₂` for a candidate solution.
    ///
    /// Decoders use this to certify that a least-squares "solution" is an
    /// exact solution (residual ≈ 0 ⇒ the survivor rows really span `1`).
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] on dimension mismatch.
    pub fn residual_norm(&self, a: &Matrix, x: &[f64], b: &[f64]) -> Result<f64, LinalgError> {
        let ax = a.matvec(x)?;
        if ax.len() != b.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "residual",
                left: (ax.len(), 1),
                right: (b.len(), 1),
            });
        }
        Ok(ax
            .iter()
            .zip(b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt())
    }
}

/// Solves the underdetermined system `M·x = b` (with `M` having full row
/// rank, `rows ≤ cols`) for the minimum-norm solution via the normal
/// equations on `Mᵀ`: `x = Mᵀ·(M·Mᵀ)⁻¹·b`.
///
/// This is the textbook way to obtain a decode vector supported on a
/// *larger-than-necessary* survivor set: `x` spreads weight across all
/// available rows, which is numerically gentler than picking an arbitrary
/// square subsystem.
///
/// # Errors
///
/// [`LinalgError::ShapeMismatch`] on dimension mismatch, or
/// [`LinalgError::Singular`] if `M` does not have full row rank.
pub fn solve_min_norm(m: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if b.len() != m.nrows() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_min_norm",
            left: m.shape(),
            right: (b.len(), 1),
        });
    }
    let mt = m.transpose();
    let gram = m.matmul(&mt)?; // rows × rows
    let w = gram.solve(b)?;
    mt.matvec(&w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn square_exact_solve() {
        let a = mat(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let qr = a.qr().unwrap();
        let x = qr.solve_least_squares(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_line_fit() {
        // Fit y = c0 + c1 * t to exact line data: residual must be ~0 and
        // coefficients recovered.
        let a = mat(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [1.0, 3.0, 5.0, 7.0]; // y = 1 + 2t
        let qr = a.qr().unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
        assert!(qr.residual_norm(&a, &x, &b).unwrap() < 1e-10);
    }

    #[test]
    fn least_squares_with_noise_minimizes() {
        let a = mat(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let b = [0.0, 1.1, 1.9];
        let qr = a.qr().unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        let r_star = qr.residual_norm(&a, &x, &b).unwrap();
        // Any perturbation must not beat the LS solution.
        for d0 in [-0.05, 0.05] {
            for d1 in [-0.05, 0.05] {
                let xp = [x[0] + d0, x[1] + d1];
                let r = qr.residual_norm(&a, &xp, &b).unwrap();
                assert!(r >= r_star - 1e-12);
            }
        }
    }

    #[test]
    fn rank_deficient_detected() {
        let a = mat(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = a.qr().unwrap();
        assert!(qr.is_rank_deficient(1e-10));
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn underdetermined_rejected_by_ls() {
        let a = mat(&[&[1.0, 2.0, 3.0]]);
        let qr = a.qr().unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }

    #[test]
    fn min_norm_solves_underdetermined() {
        // One equation, two unknowns: x + y = 2; min-norm solution (1,1).
        let m = mat(&[&[1.0, 1.0]]);
        let x = solve_min_norm(&m, &[2.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_norm_exactness() {
        let m = mat(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0]]);
        let b = [3.0, 5.0];
        let x = solve_min_norm(&m, &b).unwrap();
        let mx = m.matvec(&x).unwrap();
        assert!((mx[0] - b[0]).abs() < 1e-10 && (mx[1] - b[1]).abs() < 1e-10);
    }

    #[test]
    fn min_norm_rank_deficient_errors() {
        let m = mat(&[&[1.0, 1.0], &[2.0, 2.0]]);
        assert!(solve_min_norm(&m, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn min_norm_shape_error() {
        let m = mat(&[&[1.0, 1.0]]);
        assert!(matches!(
            solve_min_norm(&m, &[1.0, 2.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(Matrix::zeros(0, 3).qr().is_err());
    }

    #[test]
    fn qr_handles_zero_column() {
        let a = mat(&[&[0.0, 1.0], &[0.0, 2.0]]);
        let qr = a.qr().unwrap();
        assert!(qr.is_rank_deficient(1e-12));
    }
}
