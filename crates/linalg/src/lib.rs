//! # hetgc-linalg
//!
//! A small, dependency-free dense linear-algebra kernel purpose-built for
//! gradient-coding research. Gradient coding strategies (see the
//! `hetgc-coding` crate) are matrices over `f64`; constructing them requires
//! solving small dense systems (Alg. 1 of the paper inverts an
//! `(s+1)×(s+1)` submatrix per data partition), and verifying them requires
//! rank / span-membership tests (Condition C1 of the paper).
//!
//! The crate provides:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the usual algebra.
//! * [`Lu`] — LU decomposition with partial pivoting ([`Matrix::lu`]),
//!   powering [`Matrix::solve`], [`Matrix::inverse`] and
//!   [`Matrix::determinant`].
//! * [`Qr`] — Householder QR ([`Matrix::qr`]) powering least-squares solves
//!   for decode vectors over non-square survivor sets.
//! * Rank and span utilities ([`Matrix::rank`], [`in_span`],
//!   [`Matrix::row_space_contains`]) used by the Condition-C1 checker.
//! * The sealed [`Element`] trait (`f64`/`f32`) and the chunked,
//!   auto-vectorizable data-plane kernels in [`kernels`] — the per-round
//!   encode/decode hot loops, generic over the element type.
//! * Vector helpers in [`vec_ops`] (`f64` instantiations of [`kernels`]).
//!
//! # Example
//!
//! ```
//! use hetgc_linalg::Matrix;
//!
//! # fn main() -> Result<(), hetgc_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
//! let x = a.solve(&[5.0, 10.0])?;
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! assert!((x[1] - 3.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```
//!
//! The *construction-time* routines ([`Matrix`], [`Lu`], [`Qr`]) are
//! `O(n³)` textbook implementations: the matrices involved in gradient
//! coding are tiny (`m ≤` a few hundred workers, `s+1 ≤ m`), so clarity
//! and numerical robustness (partial pivoting, explicit tolerance
//! handling) win over blocked performance kernels. The *data-plane*
//! routines ([`kernels`]) are the opposite trade: they run over
//! `d`-length gradients every round and are written to vectorize.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod element;
mod error;
pub mod kernels;
mod lu;
mod matrix;
mod qr;
mod rank;
pub mod vec_ops;

pub use element::Element;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::{solve_min_norm, Qr};
pub use rank::{in_span, solve_any, DEFAULT_TOLERANCE};
