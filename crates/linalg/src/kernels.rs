//! Chunked, auto-vectorizable data-plane kernels, generic over
//! [`Element`].
//!
//! These are the per-round hot loops of gradient coding: encoding is
//! `g̃_w = Σ_j b_wj·g_j` (a handful of [`axpy`]s over `d`-length rows),
//! decoding is `g = Σ_w a_w·g̃_w` (one [`block_decode`] — a `1 × |plan|`
//! by `|plan| × d` product). Everything here is written over
//! `chunks_exact` lanes with explicit scalar tails so LLVM reliably emits
//! SIMD for the chunk bodies, without `unsafe` or per-target intrinsics.
//!
//! # Kernel contract
//!
//! * **Elementwise kernels are bitwise-identical to their scalar
//!   definitions.** [`axpy`] and [`scale`] perform exactly one
//!   multiply and (for `axpy`) one add per element, in index order, with
//!   **no zero-coefficient shortcut**: `0 · NaN` is NaN and `0 · ∞` is
//!   NaN, and those propagate exactly as a scalar loop would propagate
//!   them. (An earlier `vec_ops::axpy` returned early on `alpha == 0.0`,
//!   silently dropping non-finite values from `x`; that shortcut is
//!   gone, and `tests/properties.rs` pins the equivalence on non-finite
//!   inputs.)
//! * **Reductions reassociate.** [`dot`], [`norm2`] and [`norm_inf`]
//!   accumulate in [`LANES`] independent partial accumulators (that is
//!   what lets them vectorize) and are therefore *deterministic* but not
//!   bitwise-equal to a left-to-right scalar fold. `max` is associative,
//!   so [`norm_inf`] *is* scalar-identical.
//! * **[`block_decode`] accumulates rows in argument order per element**,
//!   so it is bitwise-identical to a sequence of `axpy` calls over the
//!   full vectors — including across column blocks and across threads
//!   (parallelism splits the `d` dimension; the per-element operation
//!   order never changes).

use crate::element::Element;

/// Chunk width of the vectorized kernel bodies, in elements.
///
/// Eight covers an AVX-512 register of `f64` and keeps two AVX2 (or four
/// SSE2) operations in flight per chunk for superscalar cores; the
/// compiler re-tiles the chunk body to whatever the target offers.
pub const LANES: usize = 8;

/// Column-block width (elements) of [`block_decode`]: each block of the
/// output stays L1-resident while every input row streams through it
/// once, instead of the output streaming through cache once per row.
pub const COL_BLOCK: usize = 1024;

/// Output length (elements) below which [`block_decode`] never spawns
/// threads: spawning costs more than the decode itself.
pub const PAR_MIN_DIM: usize = 1 << 16;

/// Minimum elements of output per spawned thread.
const PAR_MIN_CHUNK: usize = 1 << 15;

/// In-place scaled accumulation `y[i] += alpha · x[i]` (BLAS `axpy`),
/// bitwise-identical to the scalar loop (see the module contract).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy<E: Element>(alpha: E, x: &[E], y: &mut [E]) {
    assert_eq!(
        x.len(),
        y.len(),
        "axpy: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    let mut yc = y.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (yl, xl) in yc.by_ref().zip(xc.by_ref()) {
        for i in 0..LANES {
            yl[i] += alpha * xl[i];
        }
    }
    for (yi, &xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x[i] *= alpha`, bitwise-identical to the scalar
/// loop.
#[inline]
pub fn scale<E: Element>(alpha: E, x: &mut [E]) {
    let mut xc = x.chunks_exact_mut(LANES);
    for xl in xc.by_ref() {
        for xi in xl {
            *xi *= alpha;
        }
    }
    for xi in xc.into_remainder() {
        *xi *= alpha;
    }
}

/// Dot product `Σ a_i·b_i` over [`LANES`] partial accumulators.
///
/// Deterministic, but reassociated relative to a scalar left-to-right
/// fold (see the module contract).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot<E: Element>(a: &[E], b: &[E]) -> E {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    let mut acc = [E::ZERO; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (al, bl) in ac.by_ref().zip(bc.by_ref()) {
        for i in 0..LANES {
            acc[i] += al[i] * bl[i];
        }
    }
    for (i, (&ai, &bi)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
        acc[i] += ai * bi;
    }
    let mut total = E::ZERO;
    for lane in acc {
        total += lane;
    }
    total
}

/// Euclidean norm `|x|₂` over [`LANES`] partial accumulators
/// (reassociated, like [`dot`]).
#[inline]
pub fn norm2<E: Element>(x: &[E]) -> E {
    let mut acc = [E::ZERO; LANES];
    let mut xc = x.chunks_exact(LANES);
    for xl in xc.by_ref() {
        for i in 0..LANES {
            acc[i] += xl[i] * xl[i];
        }
    }
    for (i, &xi) in xc.remainder().iter().enumerate() {
        acc[i] += xi * xi;
    }
    let mut total = E::ZERO;
    for lane in acc {
        total += lane;
    }
    total.sqrt()
}

/// Maximum absolute component `|x|_∞`. `max` is associative, so this is
/// scalar-identical despite the lane accumulators.
#[inline]
pub fn norm_inf<E: Element>(x: &[E]) -> E {
    let mut acc = [E::ZERO; LANES];
    let mut xc = x.chunks_exact(LANES);
    for xl in xc.by_ref() {
        for i in 0..LANES {
            acc[i] = acc[i].max(xl[i].abs());
        }
    }
    for (i, &xi) in xc.remainder().iter().enumerate() {
        acc[i] = acc[i].max(xi.abs());
    }
    let mut total = E::ZERO;
    for lane in acc {
        total = total.max(lane);
    }
    total
}

/// The GEMM-style whole-round decode kernel:
/// `out[t] = Σ_i coeffs[i] · row_of(i)[t]` — one `1 × n` by `n × d`
/// product, column-blocked so each [`COL_BLOCK`] span of `out` stays
/// L1-resident while every row streams through it once. Coefficients are
/// `f64` (decode vectors are always solved in double precision) and are
/// converted once per row via [`Element::from_f64`].
///
/// Rows are fetched by index through `row_of`, so callers can feed a
/// flat arrival block, scattered `Arc` payloads, or a CSR-gathered
/// subset without materializing a slice-of-slices. Spawns up to
/// `max_threads` scoped threads across the `d` dimension when
/// `out.len() ≥` [`PAR_MIN_DIM`]; pass `1` to force the sequential path
/// (e.g. on a zero-allocation hot path — spawning allocates).
///
/// Bitwise-identical to the equivalent sequence of full-length [`axpy`]
/// calls, for any block size and thread count (see the module contract).
///
/// # Panics
///
/// Panics if any row's length differs from `out.len()`.
pub fn block_decode_threads<'a, E, F>(coeffs: &[f64], row_of: &F, out: &mut [E], max_threads: usize)
where
    E: Element,
    F: Fn(usize) -> &'a [E] + Sync,
{
    for i in 0..coeffs.len() {
        assert_eq!(
            row_of(i).len(),
            out.len(),
            "block_decode: row {i} length mismatch"
        );
    }
    let d = out.len();
    let threads = if d >= PAR_MIN_DIM {
        max_threads.clamp(1, d.div_ceil(PAR_MIN_CHUNK))
    } else {
        1
    };
    if threads <= 1 {
        block_decode_span(coeffs, row_of, out, 0);
        return;
    }
    // Contiguous per-thread spans, rounded to whole column blocks so the
    // blocking pattern (and thus nothing at all, per-element) is
    // unaffected by the split.
    let span = d.div_ceil(threads).div_ceil(COL_BLOCK) * COL_BLOCK;
    std::thread::scope(|scope| {
        for (t, chunk) in out.chunks_mut(span).enumerate() {
            scope.spawn(move || block_decode_span(coeffs, row_of, chunk, t * span));
        }
    });
}

/// [`block_decode_threads`] with the automatic thread count: one thread
/// per [`PAR_MIN_CHUNK`] of output, capped at the machine's available
/// parallelism (sequential below [`PAR_MIN_DIM`]).
pub fn block_decode<'a, E, F>(coeffs: &[f64], row_of: &F, out: &mut [E])
where
    E: Element,
    F: Fn(usize) -> &'a [E] + Sync,
{
    block_decode_threads(coeffs, row_of, out, available_threads());
}

/// The sequential core of [`block_decode`]: one contiguous span of the
/// output, column-blocked, rows accumulated in index order.
fn block_decode_span<'a, E, F>(coeffs: &[f64], row_of: &F, out: &mut [E], offset: usize)
where
    E: Element,
    F: Fn(usize) -> &'a [E],
{
    let mut at = offset;
    for chunk in out.chunks_mut(COL_BLOCK) {
        chunk.fill(E::ZERO);
        for (i, &c) in coeffs.iter().enumerate() {
            let row = &row_of(i)[at..at + chunk.len()];
            axpy(E::from_f64(c), row, chunk);
        }
        at += chunk.len();
    }
}

/// The machine's available parallelism, probed once.
fn available_threads() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scalar reference each elementwise kernel must match bitwise.
    fn axpy_scalar<E: Element>(alpha: E, x: &[E], y: &mut [E]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64).sin() * 3.0).collect()
    }

    #[test]
    fn axpy_bitwise_matches_scalar_all_lengths() {
        for n in [0, 1, 7, 8, 9, 31, 64, 100] {
            let x = ramp(n);
            let mut y = ramp(n);
            let mut y_ref = y.clone();
            axpy(-1.75, &x, &mut y);
            axpy_scalar(-1.75, &x, &mut y_ref);
            assert_eq!(y, y_ref, "n = {n}");
        }
    }

    #[test]
    fn axpy_zero_alpha_propagates_non_finite() {
        // The pinned contract: no zero shortcut, 0 · NaN and 0 · ∞ are
        // NaN, exactly as in the scalar loop.
        let x = [1.0, f64::NAN, f64::INFINITY, -3.0];
        let mut y = [1.0, 2.0, 3.0, 4.0];
        axpy(0.0, &x, &mut y);
        assert_eq!(y[0], 1.0);
        assert!(y[1].is_nan());
        assert!(y[2].is_nan());
        assert_eq!(y[3], 4.0);
    }

    #[test]
    fn scale_and_norms() {
        let mut x = vec![1.0_f64, -2.0, 3.0];
        scale(-2.0, &mut x);
        assert_eq!(x, vec![-2.0, 4.0, -6.0]);
        assert_eq!(norm_inf(&x), 6.0);
        assert!((norm2(&[3.0_f64, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm2::<f64>(&[]), 0.0);
        assert_eq!(norm_inf::<f64>(&[]), 0.0);
        assert_eq!(dot::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn dot_matches_scalar_within_reassociation() {
        for n in [1, 8, 13, 100, 1000] {
            let a = ramp(n);
            let b: Vec<f64> = ramp(n).iter().map(|v| v + 0.5).collect();
            let scalar: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let chunked = dot(&a, &b);
            assert!(
                (scalar - chunked).abs() <= 1e-12 * (1.0 + scalar.abs()),
                "n = {n}: {scalar} vs {chunked}"
            );
        }
    }

    #[test]
    fn f32_kernels_compile_and_agree() {
        let x: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let mut y = vec![1.0_f32; 37];
        let mut y_ref = y.clone();
        axpy(2.0_f32, &x, &mut y);
        for (yi, &xi) in y_ref.iter_mut().zip(&x) {
            *yi += 2.0 * xi;
        }
        assert_eq!(y, y_ref);
        assert_eq!(norm_inf(&y), *y.last().unwrap());
    }

    #[test]
    fn block_decode_bitwise_matches_axpy_sequence() {
        let rows: Vec<Vec<f64>> = (0..5).map(|i| ramp(3 * COL_BLOCK + 17 + i - i)).collect();
        let coeffs = [0.5, -1.25, 2.0, 0.0, 3.5];
        let d = rows[0].len();
        let mut reference = vec![0.0; d];
        for (i, &c) in coeffs.iter().enumerate() {
            axpy(c, &rows[i], &mut reference);
        }
        let mut out = vec![f64::NAN; d];
        block_decode(&coeffs, &|i| rows[i].as_slice(), &mut out);
        assert_eq!(out, reference);
    }

    #[test]
    fn block_decode_threads_bitwise_matches_sequential() {
        // Force the parallel path regardless of core count: the split
        // across the d dimension must not change a single bit.
        let d = PAR_MIN_DIM + 3 * COL_BLOCK + 11;
        let rows: Vec<Vec<f64>> = (0..4).map(|_| ramp(d)).collect();
        let coeffs = [1.5, -0.25, 0.75, 2.0];
        let mut sequential = vec![0.0; d];
        block_decode_threads(&coeffs, &|i| rows[i].as_slice(), &mut sequential, 1);
        for threads in [2, 3, 7] {
            let mut parallel = vec![f64::NAN; d];
            block_decode_threads(&coeffs, &|i| rows[i].as_slice(), &mut parallel, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn block_decode_empty_coeffs_zeroes_out() {
        let mut out = vec![f64::NAN; 10];
        let rows: Vec<Vec<f64>> = Vec::new();
        block_decode(&[], &|i| rows[i].as_slice(), &mut out);
        assert_eq!(out, vec![0.0; 10]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn block_decode_rejects_short_rows() {
        let row = [1.0_f64; 4];
        let mut out = [0.0_f64; 8];
        block_decode(&[1.0], &|_| &row[..], &mut out);
    }
}
