//! Rank computation and row-space membership tests.
//!
//! Condition C1 of the paper asks, for every `(m−s)`-subset `I` of workers,
//! whether `1_{1×k}` lies in the span of `{b_i : i ∈ I}`. [`in_span`]
//! implements that membership test by comparing the rank of the row set
//! with and without the target vector appended — a formulation that is
//! robust to the wildly varying magnitudes produced by the randomized
//! construction (`C_i⁻¹·1` entries can be large when a random submatrix is
//! nearly singular).

// Index-style loops below mirror the textbook elimination algorithms;
// iterator adaptors would obscure the pivot arithmetic.
#![allow(clippy::needless_range_loop)]

use crate::matrix::Matrix;

/// Default tolerance for rank / span decisions.
///
/// Entries of constructed coding matrices are `O(1)`–`O(10²)`; Gaussian
/// elimination on such rows keeps residuals far above `1e-7` for genuinely
/// independent rows and far below it for dependent ones, so this threshold
/// has a wide safety margin in both directions.
pub const DEFAULT_TOLERANCE: f64 = 1e-7;

/// Computes the numerical rank of `a` by row reduction with partial
/// pivoting, treating pivots of relative magnitude ≤ `tol` as zero.
pub(crate) fn rank(a: &Matrix, tol: f64) -> usize {
    let (rows, cols) = a.shape();
    if rows == 0 || cols == 0 {
        return 0;
    }
    // Normalize the tolerance by the largest entry so the test is
    // scale-invariant.
    let scale = a.max_abs();
    if scale == 0.0 {
        return 0;
    }
    let threshold = tol * scale;

    let mut m: Vec<Vec<f64>> = a.rows_iter().map(|r| r.to_vec()).collect();
    let mut rank = 0;
    let mut pivot_col = 0;

    while rank < rows && pivot_col < cols {
        // Find the row with the largest entry in this column at/below `rank`.
        let mut best_row = rank;
        let mut best_val = m[rank][pivot_col].abs();
        for (r, row) in m.iter().enumerate().skip(rank + 1) {
            let v = row[pivot_col].abs();
            if v > best_val {
                best_val = v;
                best_row = r;
            }
        }
        if best_val <= threshold {
            pivot_col += 1;
            continue;
        }
        m.swap(rank, best_row);
        // Eliminate below.
        let pivot = m[rank][pivot_col];
        for r in (rank + 1)..rows {
            let factor = m[r][pivot_col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in pivot_col..cols {
                m[r][c] -= factor * m[rank][c];
            }
        }
        rank += 1;
        pivot_col += 1;
    }
    rank
}

/// Finds *a* particular solution `x` to `A·x = b`, for any shape of `A`,
/// by Gaussian elimination on the augmented matrix; free variables are set
/// to zero. Returns `None` when the system is inconsistent at tolerance
/// `tol` (relative to the largest entry of `[A | b]`).
///
/// Decoders use this to compute decode vectors: given survivor rows
/// `M = B_I`, a decode vector is any solution of `Mᵀ·a = 1ᵀ`. Unlike an LU
/// or QR solve, this handles square, overdetermined, underdetermined *and*
/// rank-deficient-but-consistent systems uniformly.
///
/// # Example
///
/// ```
/// use hetgc_linalg::{solve_any, Matrix, DEFAULT_TOLERANCE};
///
/// # fn main() -> Result<(), hetgc_linalg::LinalgError> {
/// // Underdetermined but consistent.
/// let a = Matrix::from_rows(&[&[1.0, 1.0, 0.0]])?;
/// let x = solve_any(&a, &[2.0], DEFAULT_TOLERANCE).expect("consistent");
/// assert!((x[0] + x[1] - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn solve_any(a: &Matrix, b: &[f64], tol: f64) -> Option<Vec<f64>> {
    let (rows, cols) = a.shape();
    if b.len() != rows {
        return None;
    }
    // Build augmented matrix [A | b].
    let mut m: Vec<Vec<f64>> = a
        .rows_iter()
        .zip(b)
        .map(|(r, &bi)| {
            let mut row = r.to_vec();
            row.push(bi);
            row
        })
        .collect();
    let scale = m
        .iter()
        .flat_map(|r| r.iter())
        .fold(0.0_f64, |acc, v| acc.max(v.abs()));
    if scale == 0.0 {
        // A and b are both zero: x = 0 works.
        return Some(vec![0.0; cols]);
    }
    let threshold = tol * scale;

    let mut pivot_cols: Vec<usize> = Vec::new();
    let mut rank = 0;
    for col in 0..cols {
        if rank >= rows {
            break;
        }
        let mut best_row = rank;
        let mut best_val = m[rank][col].abs();
        for (r, row) in m.iter().enumerate().skip(rank + 1) {
            if row[col].abs() > best_val {
                best_val = row[col].abs();
                best_row = r;
            }
        }
        if best_val <= threshold {
            continue;
        }
        m.swap(rank, best_row);
        let pivot = m[rank][col];
        for r in 0..rows {
            if r == rank {
                continue;
            }
            let factor = m[r][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..=cols {
                let sub = factor * m[rank][c];
                m[r][c] -= sub;
            }
        }
        pivot_cols.push(col);
        rank += 1;
    }
    // Inconsistency: a zero row of A with non-zero rhs.
    for row in m.iter().skip(rank) {
        if row[cols].abs() > threshold {
            return None;
        }
    }
    let mut x = vec![0.0; cols];
    for (r, &pc) in pivot_cols.iter().enumerate() {
        x[pc] = m[r][cols] / m[r][pc];
    }
    Some(x)
}

/// Tests whether `target` lies in the span of the rows of `rows_matrix`.
///
/// Implemented as a rank comparison: `target ∈ rowspace(M)` iff
/// `rank([M; target]) == rank(M)`. Use [`DEFAULT_TOLERANCE`] unless you have
/// a reason not to.
///
/// # Example
///
/// ```
/// use hetgc_linalg::{in_span, Matrix, DEFAULT_TOLERANCE};
///
/// # fn main() -> Result<(), hetgc_linalg::LinalgError> {
/// let m = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]])?;
/// assert!(in_span(&m, &[1.0, 1.0, 1.0], DEFAULT_TOLERANCE)); // row0+row1
/// assert!(!in_span(&m, &[0.0, 0.0, 1.0], DEFAULT_TOLERANCE));
/// # Ok(())
/// # }
/// ```
pub fn in_span(rows_matrix: &Matrix, target: &[f64], tol: f64) -> bool {
    if target.len() != rows_matrix.ncols() {
        return false;
    }
    if target.iter().all(|&x| x == 0.0) {
        return true; // the zero vector is in every span
    }
    if rows_matrix.nrows() == 0 {
        return false;
    }
    let base_rank = rank(rows_matrix, tol);
    let augmented = rows_matrix
        .vstack(&Matrix::row_vector(target))
        .expect("target length checked above");
    rank(&augmented, tol) == base_rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn rank_full() {
        assert_eq!(Matrix::identity(4).rank(DEFAULT_TOLERANCE), 4);
    }

    #[test]
    fn rank_deficient() {
        let a = mat(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.rank(DEFAULT_TOLERANCE), 1);
    }

    #[test]
    fn rank_zero_matrix() {
        assert_eq!(Matrix::zeros(3, 3).rank(DEFAULT_TOLERANCE), 0);
    }

    #[test]
    fn rank_rectangular() {
        let a = mat(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        assert_eq!(a.rank(DEFAULT_TOLERANCE), 2);
        assert_eq!(a.transpose().rank(DEFAULT_TOLERANCE), 2);
    }

    #[test]
    fn rank_nearly_dependent_rows() {
        // Second row differs only at 1e-12 relative scale: rank 1.
        let a = mat(&[&[1.0, 1.0], &[1.0, 1.0 + 1e-12]]);
        assert_eq!(a.rank(DEFAULT_TOLERANCE), 1);
        // At 1e-3 the rows are genuinely independent.
        let b = mat(&[&[1.0, 1.0], &[1.0, 1.0 + 1e-3]]);
        assert_eq!(b.rank(DEFAULT_TOLERANCE), 2);
    }

    #[test]
    fn in_span_positive() {
        let m = mat(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(in_span(&m, &[3.0, -2.0], DEFAULT_TOLERANCE));
    }

    #[test]
    fn in_span_negative() {
        let m = mat(&[&[1.0, 0.0, 0.0]]);
        assert!(!in_span(&m, &[0.0, 1.0, 0.0], DEFAULT_TOLERANCE));
    }

    #[test]
    fn in_span_zero_vector_always() {
        let m = mat(&[&[1.0, 2.0]]);
        assert!(in_span(&m, &[0.0, 0.0], DEFAULT_TOLERANCE));
    }

    #[test]
    fn in_span_wrong_len_is_false() {
        let m = mat(&[&[1.0, 2.0]]);
        assert!(!in_span(&m, &[1.0], DEFAULT_TOLERANCE));
    }

    #[test]
    fn in_span_combination_of_many() {
        let m = mat(&[
            &[1.0, 1.0, 0.0, 0.0],
            &[0.0, 1.0, 1.0, 0.0],
            &[0.0, 0.0, 1.0, 1.0],
        ]);
        // row0 - row1 + row2 = [1,0,0,1]
        assert!(in_span(&m, &[1.0, 0.0, 0.0, 1.0], DEFAULT_TOLERANCE));
        assert!(!in_span(&m, &[1.0, 0.0, 0.0, 0.0], DEFAULT_TOLERANCE));
    }

    #[test]
    fn in_span_scale_invariance() {
        // Same geometry at 1e6 scale must give the same answers.
        let m = mat(&[&[1e6, 0.0], &[0.0, 1e6]]);
        assert!(in_span(&m, &[5e6, 5e6], DEFAULT_TOLERANCE));
        let d = mat(&[&[1e6, 1e6]]);
        assert!(!in_span(&d, &[1e6, 0.0], DEFAULT_TOLERANCE));
    }

    #[test]
    fn empty_row_matrix_spans_nothing_but_zero() {
        let m = Matrix::zeros(0, 2);
        assert!(!in_span(&m, &[1.0, 0.0], DEFAULT_TOLERANCE));
        assert!(in_span(&m, &[0.0, 0.0], DEFAULT_TOLERANCE));
    }

    #[test]
    fn solve_any_square() {
        let a = mat(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let x = solve_any(&a, &[2.0, 8.0], DEFAULT_TOLERANCE).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn solve_any_underdetermined_consistent() {
        let a = mat(&[&[1.0, 1.0, 1.0]]);
        let x = solve_any(&a, &[3.0], DEFAULT_TOLERANCE).unwrap();
        assert!((x.iter().sum::<f64>() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve_any_overdetermined_consistent() {
        // Duplicate equations are fine.
        let a = mat(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let x = solve_any(&a, &[2.0, 2.0, 5.0], DEFAULT_TOLERANCE).unwrap();
        assert_eq!(x, vec![2.0, 5.0]);
    }

    #[test]
    fn solve_any_inconsistent_none() {
        let a = mat(&[&[1.0, 0.0], &[1.0, 0.0]]);
        assert!(solve_any(&a, &[1.0, 2.0], DEFAULT_TOLERANCE).is_none());
    }

    #[test]
    fn solve_any_rank_deficient_consistent() {
        let a = mat(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let x = solve_any(&a, &[3.0, 6.0], DEFAULT_TOLERANCE).unwrap();
        assert!((x[0] + 2.0 * x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve_any_zero_system() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(
            solve_any(&a, &[0.0, 0.0], DEFAULT_TOLERANCE).unwrap(),
            vec![0.0; 3]
        );
        assert!(solve_any(&a, &[1.0, 0.0], DEFAULT_TOLERANCE).is_none());
    }

    #[test]
    fn solve_any_wrong_rhs_len() {
        let a = Matrix::identity(2);
        assert!(solve_any(&a, &[1.0], DEFAULT_TOLERANCE).is_none());
    }
}
