//! The sealed [`Element`] trait: the scalar types the data-plane kernels
//! operate on.
//!
//! Gradient coding *construction* (solving decode vectors, rank checks)
//! stays in `f64` — the matrices are tiny and precision matters. The
//! *data plane* (encoding `g̃_w = Σ_j b_wj·g_j`, decoding
//! `g = Σ_w a_w·g̃_w` over `d`-length gradients) is where the bytes and
//! the cycles are, and communication-efficient follow-ups need it in
//! lower precision. [`Element`] is that seam: the chunked kernels in
//! [`crate::kernels`] are generic over it, `f64` and `f32` implement it
//! today, and a future bf16/quantized element only has to implement this
//! trait to inherit the whole kernel + codec data plane.
//!
//! The trait is **sealed**: kernel semantics (bitwise scalar/chunked
//! equivalence, zero/one identities) are part of this crate's contract,
//! so downstream crates can rely on every `Element` behaving like an
//! IEEE-754 float rather than guarding against exotic implementations.

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

mod sealed {
    /// Prevents downstream `Element` implementations; see module docs.
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// A scalar element of the gradient data plane. See the module docs.
///
/// Implemented by `f64` and `f32`. All operations mirror the IEEE-754
/// semantics of the underlying primitive: in particular `ZERO * x` is
/// **not** assumed to be `ZERO` (it is NaN for non-finite `x`), which is
/// why the kernels never short-circuit on zero coefficients.
pub trait Element:
    sealed::Sealed
    + Copy
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + MulAssign
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Short type name (`"f64"`, `"f32"`) for telemetry and reports.
    const NAME: &'static str;
    /// Bytes per element (`std::mem::size_of::<Self>()`).
    const BYTES: usize;

    /// Conversion from `f64` (rounding to nearest for narrower types).
    /// Decode coefficients are always solved in `f64` and converted at
    /// the kernel boundary; for `f64` this is the identity.
    fn from_f64(v: f64) -> Self;

    /// Widening conversion to `f64` (exact for `f64` and `f32`).
    fn to_f64(self) -> f64;

    /// Absolute value.
    fn abs(self) -> Self;

    /// Square root.
    fn sqrt(self) -> Self;

    /// IEEE-754 maximum (NaN-ignoring, as `f64::max`).
    fn max(self, other: Self) -> Self;

    /// Whether the value is neither infinite nor NaN.
    fn is_finite(self) -> bool;
}

impl Element for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f64";
    const BYTES: usize = std::mem::size_of::<f64>();

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }

    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl Element for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f32";
    const BYTES: usize = std::mem::size_of::<f32>();

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }

    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_names() {
        assert_eq!(<f64 as Element>::ZERO, 0.0);
        assert_eq!(<f32 as Element>::ONE, 1.0);
        assert_eq!(<f64 as Element>::NAME, "f64");
        assert_eq!(<f32 as Element>::NAME, "f32");
        assert_eq!(<f64 as Element>::BYTES, 8);
        assert_eq!(<f32 as Element>::BYTES, 4);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(<f64 as Element>::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(<f32 as Element>::from_f64(1.5).to_f64(), 1.5);
        // Narrowing rounds to nearest.
        let narrowed = <f32 as Element>::from_f64(0.1);
        assert_eq!(narrowed, 0.1_f32);
    }

    #[test]
    fn zero_times_nan_is_nan() {
        // The identity the kernels must respect: no zero short-circuit.
        let z = <f64 as Element>::ZERO;
        assert!((z * f64::NAN).is_nan());
        let z = <f32 as Element>::ZERO;
        assert!((z * f32::NAN).is_nan());
    }
}
