// Index-style loops below mirror the textbook elimination algorithms;
// iterator adaptors would obscure the pivot arithmetic.
#![allow(clippy::needless_range_loop)]

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Pivot magnitudes below this are treated as zero (singular matrix).
///
/// The random coding matrices used by Alg. 1 have entries in `(0,1)`; their
/// `(s+1)×(s+1)` submatrices are non-singular with probability 1, so in
/// practice this threshold only fires on genuinely degenerate inputs (e.g. a
/// hand-built support structure with a repeated worker).
const PIVOT_EPS: f64 = 1e-12;

/// LU decomposition with partial pivoting: `P·A = L·U`.
///
/// Alg. 1 of the paper computes, for each data partition `i`, the vector
/// `d_i = C_i^{-1}·1` where `C_i` is the `(s+1)×(s+1)` submatrix of the
/// random matrix `C` restricted to the partition's replica workers. A single
/// `Lu` per partition serves both that solve and (in tests) the
/// determinant-based non-singularity check of property (P1).
///
/// # Example
///
/// ```
/// use hetgc_linalg::Matrix;
///
/// # fn main() -> Result<(), hetgc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?; // needs pivoting
/// let lu = a.lu()?;
/// let x = lu.solve(&[2.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (below diagonal, unit diagonal implicit) and U (on/above).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row index now at row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), for the determinant.
    perm_sign: f64,
    /// Smallest absolute pivot encountered, for singularity reporting.
    min_pivot: f64,
}

impl Lu {
    /// Factors a square matrix. Called via [`Matrix::lu`].
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] or [`LinalgError::Empty`].
    pub(crate) fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                op: "lu",
                shape: a.shape(),
            });
        }
        let n = a.nrows();
        if n == 0 {
            return Err(LinalgError::Empty { op: "lu" });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut min_pivot = f64::INFINITY;

        for col in 0..n {
            // Partial pivoting: pick the largest remaining entry in `col`.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            min_pivot = min_pivot.min(pivot_val);
            if pivot_row != col {
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(col, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(col, col)];
            if pivot.abs() < PIVOT_EPS {
                // Leave the column as-is; solve()/inverse() will report the
                // singularity. Continuing lets determinant() return ~0.
                continue;
            }
            for r in (col + 1)..n {
                let factor = lu[(r, col)] / pivot;
                lu[(r, col)] = factor;
                for j in (col + 1)..n {
                    let sub = factor * lu[(col, j)];
                    lu[(r, j)] -= sub;
                }
            }
        }

        Ok(Lu {
            lu,
            perm,
            perm_sign,
            min_pivot,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Returns `true` if a pivot fell below the singularity threshold.
    pub fn is_singular(&self) -> bool {
        self.min_pivot < PIVOT_EPS
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`;
    /// [`LinalgError::Singular`] if the matrix was singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        if self.is_singular() {
            return Err(LinalgError::Singular {
                pivot: self.min_pivot,
            });
        }
        // Forward substitution with permuted b (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution on U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Returns `A⁻¹` by solving against each basis vector.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Singular`] if the matrix was singular.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }

    /// Determinant: product of U's diagonal times the permutation sign.
    ///
    /// Returns a value near zero (not an error) for singular matrices.
    pub fn determinant(&self) -> f64 {
        let n = self.dim();
        let mut det = self.perm_sign;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn solve_identity() {
        let i = Matrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = mat(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn solve_3x3() {
        let a = mat(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(&expected) {
            assert!((xi - ei).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn singular_reports_error() {
        let a = mat(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let lu = a.lu().unwrap();
        assert!(lu.is_singular());
        assert!(matches!(
            lu.solve(&[1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
        assert!(matches!(lu.inverse(), Err(LinalgError::Singular { .. })));
        assert!(lu.determinant().abs() < 1e-9);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = mat(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-12), "{prod:?}");
    }

    #[test]
    fn determinant_known() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((a.determinant().unwrap() + 2.0).abs() < 1e-12);
        // Permutation matrices have determinant ±1.
        let p = mat(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((p.determinant().unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.lu(),
            Err(LinalgError::NotSquare { op: "lu", .. })
        ));
    }

    #[test]
    fn empty_rejected() {
        let a = Matrix::zeros(0, 0);
        assert!(matches!(a.lu(), Err(LinalgError::Empty { .. })));
    }

    #[test]
    fn solve_wrong_rhs_len() {
        let a = Matrix::identity(2);
        let lu = a.lu().unwrap();
        assert!(matches!(
            lu.solve(&[1.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn random_solve_residual_small() {
        // Deterministic pseudo-random matrix via an LCG; no rand dependency
        // needed in unit tests.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) + 0.01
        };
        for n in [2usize, 5, 9, 16] {
            let a = Matrix::from_fn(n, n, |_, _| next());
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = a.solve(&b).unwrap();
            let ax = a.matvec(&x).unwrap();
            let residual: f64 = ax
                .iter()
                .zip(&b)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0, f64::max);
            assert!(residual < 1e-8, "n={n} residual={residual}");
        }
    }

    #[test]
    fn one_by_one() {
        let a = mat(&[&[5.0]]);
        assert_eq!(a.solve(&[10.0]).unwrap(), vec![2.0]);
        assert!((a.determinant().unwrap() - 5.0).abs() < 1e-12);
    }
}
