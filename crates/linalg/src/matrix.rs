use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::error::LinalgError;
use crate::lu::Lu;
use crate::qr::Qr;

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse of this workspace: coding strategies
/// (`B ∈ R^{m×k}`), auxiliary random matrices (`C ∈ R^{(s+1)×m}`) and decode
/// matrices (`A`) are all `Matrix` values. The type is deliberately simple —
/// owned storage, no views — because every matrix in gradient coding is
/// small.
///
/// # Example
///
/// ```
/// use hetgc_linalg::Matrix;
///
/// # fn main() -> Result<(), hetgc_linalg::LinalgError> {
/// let i = Matrix::identity(3);
/// let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 1.0], &[2.0, 0.0, 1.0]])?;
/// assert_eq!(a.matmul(&i)?, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Example
    /// ```
    /// let z = hetgc_linalg::Matrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with ones.
    ///
    /// The all-ones row vector `1_{1×k}` is central to gradient coding: a
    /// decode vector `a` is valid exactly when `aB = 1_{1×k}`.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::RaggedRows`] if the rows have different
    /// lengths, and [`LinalgError::Empty`] if `rows` is empty or the rows
    /// themselves are empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty { op: "from_rows" });
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::RaggedRows {
                    expected: cols,
                    found: r.len(),
                    row: i,
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    ///
    /// ```
    /// let hilbert = hetgc_linalg::Matrix::from_fn(3, 3, |i, j| 1.0 / (i + j + 1) as f64);
    /// assert_eq!(hilbert[(0, 0)], 1.0);
    /// ```
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a 1-row matrix from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Creates a 1-column matrix from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning the underlying row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nrows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row index {i} out of bounds ({} rows)",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nrows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.rows,
            "row index {i} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.ncols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "col index {j} out of bounds ({} cols)",
            self.cols
        );
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Iterates over the rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] unless
    /// `self.ncols() == rhs.nrows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.data[i * self.cols + l];
                if a == 0.0 {
                    continue;
                }
                let src = &rhs.data[l * rhs.cols..(l + 1) * rhs.cols];
                let dst = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += a * s;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] unless `v.len() == self.ncols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok(self
            .rows_iter()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Vector–matrix product `v * self` (row vector times matrix).
    ///
    /// This is how decoding works in gradient coding: the decode row `a`
    /// times the strategy `B` must equal the all-ones row.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] unless `v.len() == self.nrows()`.
    pub fn vecmat(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "vecmat",
                left: (1, v.len()),
                right: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.row(i)) {
                *o += vi * m;
            }
        }
        Ok(out)
    }

    /// Elementwise scaling by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Extracts the submatrix formed by the given rows (in order).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] for any out-of-range index.
    pub fn select_rows(&self, rows: &[usize]) -> Result<Matrix, LinalgError> {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            if r >= self.rows {
                return Err(LinalgError::IndexOutOfBounds {
                    index: r,
                    bound: self.rows,
                    axis: "row",
                });
            }
            data.extend_from_slice(self.row(r));
        }
        Ok(Matrix {
            rows: rows.len(),
            cols: self.cols,
            data,
        })
    }

    /// Extracts the submatrix formed by the given columns (in order).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] for any out-of-range index.
    pub fn select_cols(&self, cols: &[usize]) -> Result<Matrix, LinalgError> {
        for &c in cols {
            if c >= self.cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: c,
                    bound: self.cols,
                    axis: "col",
                });
            }
        }
        let mut data = Vec::with_capacity(cols.len() * self.rows);
        for i in 0..self.rows {
            for &c in cols {
                data.push(self.data[i * self.cols + c]);
            }
        }
        Ok(Matrix {
            rows: self.rows,
            cols: cols.len(),
            data,
        })
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (`∞`-norm over entries).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Returns `true` if every entry differs from `other` by at most `tol`.
    ///
    /// Shapes must match; mismatched shapes return `false` rather than
    /// erroring, which keeps assertions in tests terse.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::Empty`] for 0×0 input. Singularity is *not* an error
    /// here — it is reported by the operations ([`Lu::solve`] etc.).
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        Lu::new(self)
    }

    /// Householder QR decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for empty input.
    pub fn qr(&self) -> Result<Qr, LinalgError> {
        Qr::new(self)
    }

    /// Solves `self * x = b` for square `self`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`], [`LinalgError::ShapeMismatch`] or
    /// [`LinalgError::Singular`].
    ///
    /// # Example
    /// ```
    /// # use hetgc_linalg::Matrix;
    /// # fn main() -> Result<(), hetgc_linalg::LinalgError> {
    /// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
    /// let x = a.solve(&[1.0, 2.0])?;
    /// let ax = a.matvec(&x)?;
    /// assert!((ax[0] - 1.0).abs() < 1e-12 && (ax[1] - 2.0).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.lu()?.solve(b)
    }

    /// Returns the inverse of a square, non-singular matrix.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.lu()?.inverse()
    }

    /// Determinant of a square matrix.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`].
    pub fn determinant(&self) -> Result<f64, LinalgError> {
        Ok(self.lu()?.determinant())
    }

    /// Numerical rank with tolerance `tol` (see the `rank` module internals).
    pub fn rank(&self, tol: f64) -> usize {
        crate::rank::rank(self, tol)
    }

    /// Tests whether `target` lies in the row space of `self`.
    ///
    /// This is exactly the membership test of the paper's Condition C1:
    /// `1_{1×k} ∈ span({b_i : i ∈ I})`.
    pub fn row_space_contains(&self, target: &[f64], tol: f64) -> bool {
        crate::rank::in_span(self, target, tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for row in self.rows_iter() {
            write!(f, "  [")?;
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:9.4}")?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch; use explicit shape checks when shapes are
    /// not statically known.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn zeros_ones_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let o = Matrix::ones(3, 2);
        assert!(o.as_slice().iter().all(|&x| x == 1.0));

        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(
            Matrix::from_rows(&[]),
            Err(LinalgError::Empty { .. })
        ));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = mat(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = mat(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, mat(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.vecmat(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn select_rows_and_cols() {
        let a = mat(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let r = a.select_rows(&[2, 0]).unwrap();
        assert_eq!(r, mat(&[&[7.0, 8.0, 9.0], &[1.0, 2.0, 3.0]]));
        let c = a.select_cols(&[1]).unwrap();
        assert_eq!(c, mat(&[&[2.0], &[5.0], &[8.0]]));
        assert!(a.select_rows(&[3]).is_err());
        assert!(a.select_cols(&[5]).is_err());
    }

    #[test]
    fn vstack_stacks() {
        let a = mat(&[&[1.0, 2.0]]);
        let b = mat(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn norms() {
        let a = mat(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn approx_eq_tolerates() {
        let a = mat(&[&[1.0, 2.0]]);
        let b = mat(&[&[1.0 + 1e-12, 2.0 - 1e-12]]);
        assert!(a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&b, 1e-14));
        assert!(!a.approx_eq(&Matrix::zeros(2, 1), 1.0));
    }

    #[test]
    fn operators() {
        let a = mat(&[&[1.0, 2.0]]);
        let b = mat(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, mat(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, mat(&[&[2.0, 3.0]]));
        assert_eq!(-&a, mat(&[&[-1.0, -2.0]]));
        assert_eq!(&a * 2.0, mat(&[&[2.0, 4.0]]));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_panics_on_shape_mismatch() {
        let _ = &mat(&[&[1.0]]) + &mat(&[&[1.0, 2.0]]);
    }

    #[test]
    fn row_col_access() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
        let rows: Vec<&[f64]> = a.rows_iter().collect();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn row_mut_updates() {
        let mut a = Matrix::zeros(2, 2);
        a.row_mut(1)[0] = 9.0;
        assert_eq!(a[(1, 0)], 9.0);
        a[(0, 1)] = 5.0;
        assert_eq!(a[(0, 1)], 5.0);
    }

    #[test]
    fn from_fn_fills() {
        let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Matrix::zeros(1, 1));
        assert!(s.contains("Matrix 1x1"));
    }

    #[test]
    fn row_and_col_vectors() {
        assert_eq!(Matrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
        assert_eq!(Matrix::col_vector(&[1.0, 2.0]).shape(), (2, 1));
    }
}
