//! Free functions on `&[f64]` slices.
//!
//! Gradients in the ML substrate are flat `Vec<f32>`/`Vec<f64>` buffers;
//! encoding (`g̃_i = Σ_j b_ij·g_j`) and decoding (`g = Σ_i a_i·g̃_i`) are
//! repeated scaled accumulations. These helpers keep that code readable and
//! give the property tests a single algebra to target.
//!
//! The hot operations (`dot`, `axpy`, `scale`, the norms) are thin `f64`
//! instantiations of the chunked generic kernels in [`crate::kernels`];
//! see that module for the vectorization and bitwise-equivalence
//! contract. In particular `axpy` no longer special-cases `alpha == 0.0`:
//! an earlier version returned early, which silently dropped NaN/±inf
//! propagation from `x` (`0 · NaN` is NaN, not `0`) and made the scalar
//! and chunked paths diverge bitwise on non-finite gradients.

use crate::kernels;

/// Dot product `Σ a_i·b_i`.
///
/// Accumulates over [`kernels::LANES`] partial sums (deterministic, but
/// reassociated relative to a left-to-right fold).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
/// ```
/// assert_eq!(hetgc_linalg::vec_ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    kernels::dot(a, b)
}

/// In-place scaled accumulation: `y += alpha * x` (BLAS `axpy`).
///
/// Exactly one multiply-add per element, with **no** `alpha == 0.0`
/// shortcut: non-finite values in `x` propagate (`0 · NaN` is NaN), and
/// the result is bitwise-identical to the scalar loop.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    kernels::axpy(alpha, x, y);
}

/// In-place scaling: `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    kernels::scale(alpha, x);
}

/// Euclidean norm `|x|₂` (lane-accumulated, like [`dot`]).
pub fn norm2(x: &[f64]) -> f64 {
    kernels::norm2(x)
}

/// Maximum absolute component `|x|_∞`.
pub fn norm_inf(x: &[f64]) -> f64 {
    kernels::norm_inf(x)
}

/// Number of non-zero entries — the `ℓ₀` "norm" `‖b‖₀` used throughout the
/// paper to count how many partitions a worker computes.
pub fn l0_norm(x: &[f64]) -> usize {
    x.iter().filter(|&&v| v != 0.0).count()
}

/// Indices of non-zero entries — `supp(b)` in the paper's notation.
pub fn support(x: &[f64]) -> Vec<usize> {
    x.iter()
        .enumerate()
        .filter(|(_, &v)| v != 0.0)
        .map(|(i, _)| i)
        .collect()
}

/// Componentwise sum of many equal-length vectors.
///
/// Returns an empty vector when `vs` is empty.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn sum_all(vs: &[Vec<f64>]) -> Vec<f64> {
    let Some(first) = vs.first() else {
        return Vec::new();
    };
    let mut acc = vec![0.0; first.len()];
    for v in vs {
        axpy(1.0, v, &mut acc);
    }
    acc
}

/// Maximum absolute componentwise difference between two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_len_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn axpy_zero_alpha_propagates_non_finite() {
        // Finite inputs: alpha == 0 leaves y unchanged (x·0 == 0 exactly).
        let mut y = vec![1.0, 2.0];
        axpy(0.0, &[100.0, 100.0], &mut y);
        assert_eq!(y, vec![1.0, 2.0]);
        // Non-finite inputs: the old early-return hid these; the pinned
        // contract is IEEE-754 propagation.
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(0.0, &[f64::NAN, f64::INFINITY, 5.0], &mut y);
        assert!(y[0].is_nan());
        assert!(y[1].is_nan());
        assert_eq!(y[2], 3.0);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn l0_and_support() {
        let v = [0.0, 1.5, 0.0, -2.0, 0.0];
        assert_eq!(l0_norm(&v), 2);
        assert_eq!(support(&v), vec![1, 3]);
        assert_eq!(l0_norm(&[]), 0);
        assert!(support(&[0.0, 0.0]).is_empty());
    }

    #[test]
    fn sum_all_sums() {
        let vs = vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
        assert_eq!(sum_all(&vs), vec![111.0, 222.0]);
        assert!(sum_all(&[]).is_empty());
    }

    #[test]
    fn max_abs_diff_works() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 4.0]), 1.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
