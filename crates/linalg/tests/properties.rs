//! Property-based tests for the linear-algebra kernel.
//!
//! These target the algebraic identities the coding layer relies on:
//! solve/inverse exactness, rank monotonicity, span-membership soundness,
//! and the min-norm solver's exactness on full-row-rank systems.

use hetgc_linalg::{in_span, kernels, solve_min_norm, Matrix, DEFAULT_TOLERANCE};
use proptest::prelude::*;

/// Strategy: an element drawn from finite values *and* the non-finite
/// specials, so kernel-equivalence properties cover NaN/±inf propagation
/// (the old `axpy` zero-alpha shortcut diverged exactly there).
fn wild_f64() -> impl Strategy<Value = f64> {
    (0u32..13, -1e6f64..1e6).prop_map(|(tag, v)| match tag {
        8 => f64::NAN,
        9 => f64::INFINITY,
        10 => f64::NEG_INFINITY,
        11 => 0.0,
        12 => -0.0,
        _ => v,
    })
}

/// Bitwise comparison that treats any-NaN-pattern as equal (proptest may
/// synthesize the one NaN constant, but `0·∞` produces a different
/// payload than `NAN`; they are the same value for our contract).
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x.is_nan() && y.is_nan()) || x.to_bits() == y.to_bits())
}

/// Strategy: a well-conditioned-ish square matrix (diagonally dominated) of
/// side `n`, entries in (-1, 1) plus `n` on the diagonal. Diagonal dominance
/// guarantees invertibility, so solve-based properties never vacuously pass.
fn dominant_square(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |mut data| {
        for i in 0..n {
            data[i * n + i] += n as f64 + 1.0;
        }
        Matrix::from_vec(n, n, data).expect("sized correctly")
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solve_then_multiply_recovers_rhs(n in 1usize..8) {
        let runner = (dominant_square(n), vector(n));
        proptest!(|((a, b) in runner)| {
            let x = a.solve(&b).unwrap();
            let ax = a.matvec(&x).unwrap();
            for (p, q) in ax.iter().zip(&b) {
                prop_assert!((p - q).abs() < 1e-8, "residual too large");
            }
        });
    }

    #[test]
    fn inverse_is_two_sided(a in dominant_square(5)) {
        let inv = a.inverse().unwrap();
        let left = inv.matmul(&a).unwrap();
        let right = a.matmul(&inv).unwrap();
        let id = Matrix::identity(5);
        prop_assert!(left.approx_eq(&id, 1e-8));
        prop_assert!(right.approx_eq(&id, 1e-8));
    }

    #[test]
    fn determinant_of_product_multiplies(a in dominant_square(4), b in dominant_square(4)) {
        let da = a.determinant().unwrap();
        let db = b.determinant().unwrap();
        let dab = a.matmul(&b).unwrap().determinant().unwrap();
        let scale = da.abs().max(db.abs()).max(1.0);
        prop_assert!((dab - da * db).abs() / (scale * scale) < 1e-6);
    }

    #[test]
    fn transpose_preserves_rank(
        data in prop::collection::vec(-1.0f64..1.0, 12),
    ) {
        let a = Matrix::from_vec(3, 4, data).unwrap();
        prop_assert_eq!(a.rank(DEFAULT_TOLERANCE), a.transpose().rank(DEFAULT_TOLERANCE));
    }

    #[test]
    fn linear_combination_is_in_span(
        rows in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 6), 1..4),
        coeffs in prop::collection::vec(-3.0f64..3.0, 4),
    ) {
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = Matrix::from_rows(&row_refs).unwrap();
        let mut target = vec![0.0; 6];
        for (row, &c) in rows.iter().zip(&coeffs) {
            for (t, &v) in target.iter_mut().zip(row) {
                *t += c * v;
            }
        }
        prop_assert!(in_span(&m, &target, DEFAULT_TOLERANCE));
    }

    #[test]
    fn vector_outside_row_space_is_rejected(
        rows in prop::collection::vec(prop::collection::vec(0.1f64..5.0, 4), 1..3),
    ) {
        // Rows live in the first 4 coords of R^5; e5 cannot be in their span
        // after embedding (last coordinate zero for all rows).
        let embedded: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                let mut v = r.clone();
                v.push(0.0);
                v
            })
            .collect();
        let row_refs: Vec<&[f64]> = embedded.iter().map(|r| r.as_slice()).collect();
        let m = Matrix::from_rows(&row_refs).unwrap();
        let e_last = [0.0, 0.0, 0.0, 0.0, 1.0];
        prop_assert!(!in_span(&m, &e_last, DEFAULT_TOLERANCE));
    }

    #[test]
    fn min_norm_is_exact_on_full_row_rank(
        b in vector(2),
        data in prop::collection::vec(-1.0f64..1.0, 8),
    ) {
        // 2x4 with orthogonal-ish structure: add identity blocks to force
        // full row rank.
        let mut d = data;
        d[0] += 5.0; // (0,0)
        d[5] += 5.0; // (1,1)
        let m = Matrix::from_vec(2, 4, d).unwrap();
        let x = solve_min_norm(&m, &b).unwrap();
        let mx = m.matvec(&x).unwrap();
        for (p, q) in mx.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-8);
        }
    }

    #[test]
    fn matmul_associative(
        a in dominant_square(3),
        b in dominant_square(3),
        c in dominant_square(3),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-6 * left.max_abs().max(1.0)));
    }

    #[test]
    fn rank_of_stacked_duplicate_rows_unchanged(
        row in prop::collection::vec(-5.0f64..5.0, 5),
        k in 1usize..4,
    ) {
        prop_assume!(row.iter().any(|&x| x.abs() > 1e-6));
        let rows: Vec<&[f64]> = std::iter::repeat_n(row.as_slice(), k).collect();
        let m = Matrix::from_rows(&rows).unwrap();
        prop_assert_eq!(m.rank(DEFAULT_TOLERANCE), 1);
    }

    /// The chunked `axpy` kernel is bitwise-identical to the scalar
    /// definition — including on NaN/±inf inputs with `alpha == 0.0`,
    /// where the old early-return shortcut used to diverge.
    #[test]
    fn chunked_axpy_bitwise_equals_scalar(
        alpha in wild_f64(),
        xy in prop::collection::vec((wild_f64(), wild_f64()), 0..70),
    ) {
        let x: Vec<f64> = xy.iter().map(|p| p.0).collect();
        let mut y: Vec<f64> = xy.iter().map(|p| p.1).collect();
        let mut y_ref = y.clone();
        kernels::axpy(alpha, &x, &mut y);
        for (yi, &xi) in y_ref.iter_mut().zip(&x) {
            *yi += alpha * xi;
        }
        prop_assert!(bits_eq(&y, &y_ref), "chunked {y:?} vs scalar {y_ref:?}");
    }

    /// Same pin for `scale`: elementwise, so chunking is layout-only.
    #[test]
    fn chunked_scale_bitwise_equals_scalar(
        alpha in wild_f64(),
        x in prop::collection::vec(wild_f64(), 0..70),
    ) {
        let mut chunked = x.clone();
        let mut scalar = x;
        kernels::scale(alpha, &mut chunked);
        for v in scalar.iter_mut() {
            *v *= alpha;
        }
        prop_assert!(bits_eq(&chunked, &scalar));
    }

    /// The whole-round block-decode kernel is bitwise-identical to the
    /// per-row `axpy` sequence it replaces, for any row count, dimension
    /// (spanning several column blocks), and thread split.
    #[test]
    fn block_decode_bitwise_equals_axpy_sequence(
        coeffs in prop::collection::vec(-3.0f64..3.0, 0..6),
        d in 1usize..(3 * kernels::COL_BLOCK),
        seed in 0u64..1000,
    ) {
        let rows: Vec<Vec<f64>> = (0..coeffs.len())
            .map(|i| {
                (0..d)
                    .map(|t| (((seed + i as u64) * 31 + t as u64) % 97) as f64 - 48.0)
                    .collect()
            })
            .collect();
        let mut reference = vec![0.0; d];
        for (i, &c) in coeffs.iter().enumerate() {
            kernels::axpy(c, &rows[i], &mut reference);
        }
        let mut sequential = vec![f64::NAN; d];
        kernels::block_decode_threads(&coeffs, &|i| rows[i].as_slice(), &mut sequential, 1);
        prop_assert!(bits_eq(&sequential, &reference));
        let mut parallel = vec![f64::NAN; d];
        kernels::block_decode_threads(&coeffs, &|i| rows[i].as_slice(), &mut parallel, 4);
        prop_assert!(bits_eq(&parallel, &reference));
    }
}
