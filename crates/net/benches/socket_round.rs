//! Threaded vs socket round latency: the same collect round (4 workers,
//! heterogeneity-aware code, one straggler budget) executed over
//! in-process channels and over loopback TCP to real `hetgc-worker`
//! processes. The gap is the data plane's true cost: framing,
//! serialization, kernel round trips.
//!
//! The CI `bench-smoke` job runs this with `--test` on every PR.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hetgc::{heter_aware, synthetic, LinearRegression, Model, RuntimeConfig};
use hetgc_net::{ModelSpec, SocketCluster, SocketListener, WorkerFleet};
use hetgc_runtime::ThreadedCluster;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 16;
const SAMPLES: usize = 240;
const WORKERS: usize = 4;

fn bench_round(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let data = Arc::new(synthetic::linear_regression(SAMPLES, DIM, 0.01, &mut rng));
    let model = Arc::new(LinearRegression::new(DIM));
    let code = heter_aware(&[1.0; WORKERS], WORKERS, 1, &mut rng).unwrap();
    let config = RuntimeConfig::nominal(WORKERS);
    let params = vec![0.1; model.num_params()];

    let mut group = c.benchmark_group("socket_round");
    group.sample_size(10);

    let mut threaded =
        ThreadedCluster::start(code.clone(), Arc::clone(&model), Arc::clone(&data), &config)
            .unwrap();
    let mut iteration = 0usize;
    group.bench_function("threaded", |b| {
        b.iter(|| {
            iteration += 1;
            let round = threaded.round(iteration, &params).unwrap();
            black_box(round.results_used)
        })
    });
    drop(threaded);

    let listener = SocketListener::bind().unwrap();
    let addr = listener.addr().to_string();
    let _fleet = WorkerFleet::spawn(env!("CARGO_BIN_EXE_hetgc-worker"), &addr, WORKERS).unwrap();
    let mut socket = SocketCluster::start(
        listener,
        code,
        Arc::clone(&model),
        ModelSpec::Linear { dim: DIM as u32 },
        Arc::clone(&data),
        &config,
    )
    .unwrap();
    let mut iteration = 0usize;
    group.bench_function("socket", |b| {
        b.iter(|| {
            iteration += 1;
            let round = socket.round(iteration, &params).unwrap();
            black_box(round.results_used)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
