//! The framed wire protocol: compact length-prefixed binary frames.
//!
//! Every frame is `[len: u32][tag: u8][payload: len bytes]`, all integers
//! and floats little-endian. `len` counts the payload only (the tag byte
//! is outside it) and is capped at [`MAX_FRAME_LEN`] — a reader rejects
//! an oversized header *before* allocating anything, so a corrupt or
//! hostile length prefix cannot balloon memory. Inner length prefixes
//! (vector counts) are validated against the bytes actually remaining in
//! the payload the same way.
//!
//! | frame           | tag  | payload |
//! |-----------------|------|---------|
//! | `Hello`         | 0x01 | magic `u32` (`0x48_47_43_31`, "HGC1"), version `u16`, *capability bytes* |
//! | `Handshake`     | 0x02 | worker `u32`, num_params `u32`, chunk_len `u32`, ranges `vec<(u32,u32)>`, coefficients `vec<f64>`, behavior, model spec, dataset, *encoding byte* |
//! | `Round`         | 0x03 | seq `u64`, params `vec<f64>` |
//! | `GradientChunk` | 0x04 | seq `u64`, worker `u32`, offset `u32`, total `u32`, data `vec<f64>` |
//! | `RoundDone`     | 0x05 | seq `u64`, worker `u32`, compute_seconds `f64`, *opt wire_error `f64`* |
//! | `Recode`        | 0x06 | row `u32`, ranges `vec<(u32,u32)>`, coefficients `vec<f64>` |
//! | `Shutdown`      | 0x07 | *(empty)* |
//! | `EncodedChunk`  | 0x08 | seq `u64`, worker `u32`, offset `u32`, total `u32`, encoding `u8`, bytes `vec<u8>` |
//!
//! `vec<T>` is a `u32` element count followed by the elements. Optional
//! values are a presence byte (0/1) followed by the value when present.
//!
//! Fields in *italics* are the PR 10 wire-compression extensions. They
//! follow an optional-trailing-field convention: a writer emits them
//! only when they differ from the default (no capabilities, `f64`
//! encoding, no wire error), and a reader consumes them only when bytes
//! remain — so a default-valued frame is byte-identical to the pre-PR-10
//! layout and old peers interoperate transparently at `f64`. An
//! *unknown* encoding byte is [`WireError::UnknownEncoding`], never a
//! silent fallback; old masters seeing tag 0x08 get a typed
//! [`WireError::UnknownTag`].

use crate::error::WireError;
use crate::spec::{BehaviorSpec, DatasetSpec, Handshake, ModelSpec, TargetsSpec};
use hetgc_comm::PayloadEncoding;

/// Protocol magic carried by [`Frame::Hello`]: `"HGC1"` as a big-endian
/// byte string, stored little-endian like every other integer.
pub const MAGIC: u32 = 0x4847_4331;

/// Protocol version carried by [`Frame::Hello`]. Bump on any layout
/// change; the master rejects mismatched workers at the handshake.
pub const VERSION: u16 = 1;

/// Hard cap on a frame's payload length (64 MiB). A header declaring
/// more is [`WireError::Oversized`] — checked before any allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Bytes of framing overhead preceding every payload: the `u32` length
/// prefix plus the tag byte.
pub const HEADER_LEN: usize = 5;

const TAG_HELLO: u8 = 0x01;
const TAG_HANDSHAKE: u8 = 0x02;
const TAG_ROUND: u8 = 0x03;
const TAG_GRADIENT_CHUNK: u8 = 0x04;
const TAG_ROUND_DONE: u8 = 0x05;
const TAG_RECODE: u8 = 0x06;
const TAG_SHUTDOWN: u8 = 0x07;
const TAG_ENCODED_CHUNK: u8 = 0x08;

/// One protocol frame. See the module docs for the wire layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → master, first frame on a fresh connection: identifies the
    /// peer as a hetgc worker speaking this protocol version.
    Hello {
        /// Protocol version the worker speaks ([`VERSION`]).
        version: u16,
        /// Capability set: the payload-encoding bytes this worker can
        /// produce beyond the implicit `f64` baseline (see
        /// [`PayloadEncoding::advertised`]). Kept as raw bytes — a
        /// newer worker may advertise encodings this build does not
        /// know, which the master simply never selects. Empty for
        /// pre-compression peers (their `Hello` is byte-identical).
        encodings: Vec<u8>,
    },
    /// Master → worker reply to `Hello`: the worker's complete marching
    /// orders — logical row, shard assignment, codec row, behaviour,
    /// model and training data.
    Handshake(Handshake),
    /// Master → workers: start collect round `seq` on these parameters.
    Round {
        /// Strictly increasing round sequence number (also what
        /// fail-stop/throttle-step behaviours count).
        seq: u64,
        /// Current model parameters.
        params: Vec<f64>,
    },
    /// Worker → master: one chunk of the round's coded gradient. Chunks
    /// arrive in offset order on a TCP stream; splitting the payload
    /// bounds frame size and lets the worker serialize chunk `i+1` while
    /// chunk `i` is already in flight (transfer overlaps encode).
    GradientChunk {
        /// The round this chunk belongs to.
        seq: u64,
        /// The sender's current logical row.
        worker: u32,
        /// Starting coordinate of `data` within the gradient vector.
        offset: u32,
        /// Total gradient dimension (the master sizes its reassembly
        /// buffer from the handshake; this is cross-checked).
        total: u32,
        /// The chunk's coordinates.
        data: Vec<f64>,
    },
    /// Worker → master: the round's gradient is fully streamed.
    RoundDone {
        /// The completed round.
        seq: u64,
        /// The sender's current logical row.
        worker: u32,
        /// Effective compute duration (native gradient time stretched by
        /// throttle emulation and injected delay), the worker-side
        /// telemetry observation.
        compute_seconds: f64,
        /// L2 norm of this round's quantization error (what the lossy
        /// wire encoding dropped from the coded partial), measured by
        /// the worker from the encode round trip. `None` on lossless
        /// links — and absent from the wire, so `f64` peers emit the
        /// pre-compression layout.
        wire_error: Option<f64>,
    },
    /// Master → worker control frame: a live re-code. The worker becomes
    /// logical row `row` of the rebuilt code and adopts the new shard
    /// ranges and coefficients from the next `Round` on. Membership is
    /// preserved — the connection, behaviour schedule and round sequence
    /// all continue.
    Recode {
        /// The worker's new logical row.
        row: u32,
        /// New sample ranges, one per owned partition.
        ranges: Vec<(u32, u32)>,
        /// The non-zero entries of the new `b_row`, aligned with `ranges`.
        coefficients: Vec<f64>,
    },
    /// Master → worker: terminate cleanly.
    Shutdown,
    /// Worker → master: one quantized chunk of the round's coded
    /// gradient — [`Frame::GradientChunk`]'s compressed sibling, sent
    /// only on links whose handshake negotiated a non-`f64` encoding.
    /// `offset`/`total` still count *elements*, not bytes.
    EncodedChunk {
        /// The round this chunk belongs to.
        seq: u64,
        /// The sender's current logical row.
        worker: u32,
        /// Starting coordinate of the chunk within the gradient vector.
        offset: u32,
        /// Total gradient dimension.
        total: u32,
        /// The codec that produced `bytes`; must match the negotiated
        /// encoding (the master drops the link on a mismatch).
        encoding: PayloadEncoding,
        /// The codec's payload for this chunk.
        bytes: Vec<u8>,
    },
}

impl Frame {
    /// Encodes the frame as `[len][tag][payload]` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; HEADER_LEN]; // length + tag backfilled
        match self {
            Frame::Hello { version, encodings } => {
                out[4] = TAG_HELLO;
                put_u32(&mut out, MAGIC);
                put_u16(&mut out, *version);
                // Capability bytes fill the remainder of the payload;
                // an empty set emits the pre-compression layout.
                out.extend_from_slice(encodings);
            }
            Frame::Handshake(h) => {
                out[4] = TAG_HANDSHAKE;
                put_handshake(&mut out, h);
            }
            Frame::Round { seq, params } => {
                out[4] = TAG_ROUND;
                put_u64(&mut out, *seq);
                put_f64_vec(&mut out, params);
            }
            Frame::GradientChunk {
                seq,
                worker,
                offset,
                total,
                data,
            } => {
                out[4] = TAG_GRADIENT_CHUNK;
                put_u64(&mut out, *seq);
                put_u32(&mut out, *worker);
                put_u32(&mut out, *offset);
                put_u32(&mut out, *total);
                put_f64_vec(&mut out, data);
            }
            Frame::RoundDone {
                seq,
                worker,
                compute_seconds,
                wire_error,
            } => {
                out[4] = TAG_ROUND_DONE;
                put_u64(&mut out, *seq);
                put_u32(&mut out, *worker);
                put_f64(&mut out, *compute_seconds);
                // Written only when present: lossless links emit the
                // pre-compression layout.
                if wire_error.is_some() {
                    put_opt_f64(&mut out, *wire_error);
                }
            }
            Frame::Recode {
                row,
                ranges,
                coefficients,
            } => {
                out[4] = TAG_RECODE;
                put_u32(&mut out, *row);
                put_range_vec(&mut out, ranges);
                put_f64_vec(&mut out, coefficients);
            }
            Frame::Shutdown => out[4] = TAG_SHUTDOWN,
            Frame::EncodedChunk {
                seq,
                worker,
                offset,
                total,
                encoding,
                bytes,
            } => {
                out[4] = TAG_ENCODED_CHUNK;
                put_u64(&mut out, *seq);
                put_u32(&mut out, *worker);
                put_u32(&mut out, *offset);
                put_u32(&mut out, *total);
                out.push(encoding.to_byte());
                put_byte_vec(&mut out, bytes);
            }
        }
        let len = (out.len() - HEADER_LEN) as u32;
        debug_assert!(len <= MAX_FRAME_LEN, "encoder produced an oversized frame");
        out[..4].copy_from_slice(&len.to_le_bytes());
        out
    }

    /// Decodes one complete frame from the *front* of `buf`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when `buf` ends before the declared frame
    /// does; the other variants as documented on [`WireError`]. Trailing
    /// bytes after the frame are fine (use [`Frame::decode_prefix`] to
    /// learn how many were consumed).
    pub fn decode(buf: &[u8]) -> Result<Frame, WireError> {
        Self::decode_prefix(buf)?
            .map(|(frame, _)| frame)
            .ok_or(WireError::Truncated)
    }

    /// Streaming decode: tries to decode one frame from the front of
    /// `buf`, returning `Ok(None)` when more bytes are needed (an
    /// incomplete frame is not an error for a live stream — the
    /// connection layer keeps reading) and `Ok(Some((frame, consumed)))`
    /// on success.
    ///
    /// # Errors
    ///
    /// As for [`Frame::decode`], except that truncation maps to
    /// `Ok(None)`. An [`WireError::Oversized`] header is reported
    /// immediately — waiting for more bytes could never make it valid.
    pub fn decode_prefix(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized {
                declared: u64::from(len),
            });
        }
        let tag = buf[4];
        let end = HEADER_LEN + len as usize;
        if buf.len() < end {
            return Ok(None);
        }
        let mut r = Reader {
            buf: &buf[HEADER_LEN..end],
            pos: 0,
        };
        let frame = match tag {
            TAG_HELLO => {
                let magic = r.u32()?;
                if magic != MAGIC {
                    return Err(WireError::BadMagic { got: magic });
                }
                let version = r.u16()?;
                // Whatever follows the version is the capability set; a
                // pre-compression peer simply has none.
                let encodings = r.remaining()?.to_vec();
                Frame::Hello { version, encodings }
            }
            TAG_HANDSHAKE => Frame::Handshake(get_handshake(&mut r)?),
            TAG_ROUND => Frame::Round {
                seq: r.u64()?,
                params: r.f64_vec()?,
            },
            TAG_GRADIENT_CHUNK => Frame::GradientChunk {
                seq: r.u64()?,
                worker: r.u32()?,
                offset: r.u32()?,
                total: r.u32()?,
                data: r.f64_vec()?,
            },
            TAG_ROUND_DONE => Frame::RoundDone {
                seq: r.u64()?,
                worker: r.u32()?,
                compute_seconds: r.f64()?,
                wire_error: if r.has_remaining() {
                    r.opt_f64()?
                } else {
                    None
                },
            },
            TAG_RECODE => Frame::Recode {
                row: r.u32()?,
                ranges: r.range_vec()?,
                coefficients: r.f64_vec()?,
            },
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_ENCODED_CHUNK => Frame::EncodedChunk {
                seq: r.u64()?,
                worker: r.u32()?,
                offset: r.u32()?,
                total: r.u32()?,
                encoding: {
                    let value = r.u8()?;
                    PayloadEncoding::from_byte(value).ok_or(WireError::UnknownEncoding { value })?
                },
                bytes: r.byte_vec()?,
            },
            tag => return Err(WireError::UnknownTag { tag }),
        };
        if r.pos != r.buf.len() {
            return Err(WireError::Corrupt {
                what: "trailing bytes after the frame payload",
            });
        }
        Ok(Some((frame, end)))
    }
}

// ------------------------------------------------------------ writing

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_vec(out: &mut Vec<u8>, v: &[f64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_f64(out, x);
    }
}

fn put_u32_vec(out: &mut Vec<u8>, v: &[u32]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u32(out, x);
    }
}

fn put_range_vec(out: &mut Vec<u8>, v: &[(u32, u32)]) {
    put_u32(out, v.len() as u32);
    for &(lo, hi) in v {
        put_u32(out, lo);
        put_u32(out, hi);
    }
}

fn put_byte_vec(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.push(1);
            put_f64(out, x);
        }
        None => out.push(0),
    }
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
        None => out.push(0),
    }
}

fn put_handshake(out: &mut Vec<u8>, h: &Handshake) {
    put_u32(out, h.worker);
    put_u32(out, h.num_params);
    put_u32(out, h.chunk_len);
    put_range_vec(out, &h.ranges);
    put_f64_vec(out, &h.coefficients);
    // Behaviour.
    put_u64(out, h.behavior.extra_delay_micros);
    put_opt_f64(out, h.behavior.throttle);
    match h.behavior.throttle_step {
        Some((at, rate)) => {
            out.push(1);
            put_u64(out, at);
            put_f64(out, rate);
        }
        None => out.push(0),
    }
    put_opt_u64(out, h.behavior.fail_from);
    // Model.
    match h.model {
        ModelSpec::Linear { dim } => {
            out.push(0);
            put_u32(out, dim);
        }
        ModelSpec::Softmax { dim, classes } => {
            out.push(1);
            put_u32(out, dim);
            put_u32(out, classes);
        }
    }
    // Dataset.
    put_u32(out, h.dataset.dim);
    put_f64_vec(out, &h.dataset.x);
    match &h.dataset.targets {
        TargetsSpec::Regression(y) => {
            out.push(0);
            put_f64_vec(out, y);
        }
        TargetsSpec::Classes {
            labels,
            num_classes,
        } => {
            out.push(1);
            put_u32_vec(out, labels);
            put_u32(out, *num_classes);
        }
    }
    // Payload encoding: trailing byte, written only for non-default
    // encodings so an `f64` handshake keeps the pre-compression layout.
    if h.encoding != PayloadEncoding::F64 {
        out.push(h.encoding.to_byte());
    }
}

// ------------------------------------------------------------ reading

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Corrupt {
            what: "length overflow",
        })?;
        if end > self.buf.len() {
            return Err(WireError::Corrupt {
                what: "inner field overruns the frame payload",
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn has_remaining(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Consumes and returns every byte left in the payload.
    fn remaining(&mut self) -> Result<&[u8], WireError> {
        self.take(self.buf.len() - self.pos)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an element count and validates it against the bytes actually
    /// remaining (`elem_size` each) *before* allocating — a corrupt count
    /// can never over-allocate.
    fn count(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let need = n.checked_mul(elem_size).ok_or(WireError::Corrupt {
            what: "element count overflow",
        })?;
        if need > self.buf.len() - self.pos {
            return Err(WireError::Corrupt {
                what: "element count exceeds the frame payload",
            });
        }
        Ok(n)
    }

    fn byte_vec(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.count(1)?;
        Ok(self.take(n)?.to_vec())
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.count(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64()?);
        }
        Ok(v)
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.count(4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    fn range_vec(&mut self) -> Result<Vec<(u32, u32)>, WireError> {
        let n = self.count(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push((self.u32()?, self.u32()?));
        }
        Ok(v)
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(WireError::Corrupt {
                what: "presence byte must be 0 or 1",
            }),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(WireError::Corrupt {
                what: "presence byte must be 0 or 1",
            }),
        }
    }
}

fn get_handshake(r: &mut Reader<'_>) -> Result<Handshake, WireError> {
    let worker = r.u32()?;
    let num_params = r.u32()?;
    let chunk_len = r.u32()?;
    let ranges = r.range_vec()?;
    let coefficients = r.f64_vec()?;
    let behavior = BehaviorSpec {
        extra_delay_micros: r.u64()?,
        throttle: r.opt_f64()?,
        throttle_step: match r.u8()? {
            0 => None,
            1 => Some((r.u64()?, r.f64()?)),
            _ => {
                return Err(WireError::Corrupt {
                    what: "presence byte must be 0 or 1",
                })
            }
        },
        fail_from: r.opt_u64()?,
    };
    let model = match r.u8()? {
        0 => ModelSpec::Linear { dim: r.u32()? },
        1 => ModelSpec::Softmax {
            dim: r.u32()?,
            classes: r.u32()?,
        },
        _ => {
            return Err(WireError::Corrupt {
                what: "unknown model discriminant",
            })
        }
    };
    let dim = r.u32()?;
    let x = r.f64_vec()?;
    let targets = match r.u8()? {
        0 => TargetsSpec::Regression(r.f64_vec()?),
        1 => TargetsSpec::Classes {
            labels: r.u32_vec()?,
            num_classes: r.u32()?,
        },
        _ => {
            return Err(WireError::Corrupt {
                what: "unknown targets discriminant",
            })
        }
    };
    let encoding = if r.has_remaining() {
        let value = r.u8()?;
        PayloadEncoding::from_byte(value).ok_or(WireError::UnknownEncoding { value })?
    } else {
        PayloadEncoding::F64
    };
    Ok(Handshake {
        worker,
        num_params,
        chunk_len,
        ranges,
        coefficients,
        behavior,
        model,
        dataset: DatasetSpec { x, targets, dim },
        encoding,
    })
}
