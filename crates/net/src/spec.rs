//! Wire-shippable mirrors of the master's in-memory configuration: the
//! handshake payload a worker process needs to reconstruct its whole
//! runtime state — behaviour schedule, model, dataset, shard assignment
//! and codec row — on the far side of a socket.
//!
//! These are deliberately *specs*, not the runtime types themselves: the
//! wire carries fixed-width integers only, and a worker binary cannot
//! receive an `Arc<dyn Model>` — it receives a [`ModelSpec`] and builds
//! an [`AnyModel`].

use std::time::Duration;

use hetgc_comm::PayloadEncoding;
use hetgc_ml::{Dataset, LinearRegression, Model, SoftmaxRegression, Targets};
use hetgc_runtime::WorkerBehavior;

/// The master → worker handshake payload: everything a fresh worker
/// process needs before its first round.
#[derive(Debug, Clone, PartialEq)]
pub struct Handshake {
    /// The worker's logical row in the coding matrix (assignment order =
    /// accept order).
    pub worker: u32,
    /// Gradient dimension (`Model::num_params`), fixed for the run.
    pub num_params: u32,
    /// How many `f64`s per [`crate::Frame::GradientChunk`] — the
    /// master's chosen chunking granularity.
    pub chunk_len: u32,
    /// The worker's sample ranges, one per owned partition, aligned with
    /// `coefficients` (the codec's precompiled CSR row applied to the
    /// partition assignment).
    pub ranges: Vec<(u32, u32)>,
    /// The non-zero entries of `b_w`, aligned with `ranges`.
    pub coefficients: Vec<f64>,
    /// Straggler/heterogeneity emulation schedule.
    pub behavior: BehaviorSpec,
    /// Which model to instantiate.
    pub model: ModelSpec,
    /// The full training data (loopback-scale; a production data plane
    /// would ship a shard manifest instead).
    pub dataset: DatasetSpec,
    /// The payload encoding this link negotiated for gradient traffic.
    /// The master selects it from the worker's `Hello` capability set
    /// ([`PayloadEncoding::F64`] — the wire default — for peers that
    /// advertise nothing); the worker must ship its coded partials in
    /// exactly this encoding.
    pub encoding: PayloadEncoding,
}

/// Wire form of [`WorkerBehavior`].
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviorSpec {
    /// [`WorkerBehavior::extra_delay`] in microseconds.
    pub extra_delay_micros: u64,
    /// [`WorkerBehavior::throttle_samples_per_sec`].
    pub throttle: Option<f64>,
    /// [`WorkerBehavior::throttle_step`] as `(iteration, rate)`.
    pub throttle_step: Option<(u64, f64)>,
    /// [`WorkerBehavior::fail_from_iteration`].
    pub fail_from: Option<u64>,
}

impl From<&WorkerBehavior> for BehaviorSpec {
    fn from(b: &WorkerBehavior) -> Self {
        BehaviorSpec {
            extra_delay_micros: b.extra_delay.as_micros() as u64,
            throttle: b.throttle_samples_per_sec,
            throttle_step: b.throttle_step.map(|(at, rate)| (at as u64, rate)),
            fail_from: b.fail_from_iteration.map(|i| i as u64),
        }
    }
}

impl BehaviorSpec {
    /// Reconstructs the runtime behaviour on the worker side.
    pub fn to_behavior(&self) -> WorkerBehavior {
        WorkerBehavior {
            extra_delay: Duration::from_micros(self.extra_delay_micros),
            throttle_samples_per_sec: self.throttle,
            throttle_step: self.throttle_step.map(|(at, rate)| (at as usize, rate)),
            fail_from_iteration: self.fail_from.map(|i| i as usize),
        }
    }
}

/// Which model family (and shape) a worker instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSpec {
    /// [`LinearRegression`] over `dim` features.
    Linear {
        /// Feature dimension.
        dim: u32,
    },
    /// [`SoftmaxRegression`] over `dim` features and `classes` classes.
    Softmax {
        /// Feature dimension.
        dim: u32,
        /// Number of classes.
        classes: u32,
    },
}

impl ModelSpec {
    /// Instantiates the model the spec names.
    pub fn build(&self) -> AnyModel {
        match *self {
            ModelSpec::Linear { dim } => AnyModel::Linear(LinearRegression::new(dim as usize)),
            ModelSpec::Softmax { dim, classes } => {
                AnyModel::Softmax(SoftmaxRegression::new(dim as usize, classes as usize))
            }
        }
    }
}

/// A model reconstructed from a [`ModelSpec`], implementing [`Model`] by
/// delegation so the worker loop computes the *identical* floating-point
/// operations an in-process worker thread would.
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// Linear least squares.
    Linear(LinearRegression),
    /// Softmax classification.
    Softmax(SoftmaxRegression),
}

impl Model for AnyModel {
    fn num_params(&self) -> usize {
        match self {
            AnyModel::Linear(m) => m.num_params(),
            AnyModel::Softmax(m) => m.num_params(),
        }
    }

    fn loss(&self, params: &[f64], data: &Dataset, range: (usize, usize)) -> f64 {
        match self {
            AnyModel::Linear(m) => m.loss(params, data, range),
            AnyModel::Softmax(m) => m.loss(params, data, range),
        }
    }

    fn gradient(&self, params: &[f64], data: &Dataset, range: (usize, usize)) -> Vec<f64> {
        match self {
            AnyModel::Linear(m) => m.gradient(params, data, range),
            AnyModel::Softmax(m) => m.gradient(params, data, range),
        }
    }

    fn gradient_into(
        &self,
        params: &[f64],
        data: &Dataset,
        range: (usize, usize),
        out: &mut [f64],
    ) {
        match self {
            AnyModel::Linear(m) => m.gradient_into(params, data, range, out),
            AnyModel::Softmax(m) => m.gradient_into(params, data, range, out),
        }
    }

    fn init_params(&self, rng: &mut dyn rand::RngCore) -> Vec<f64> {
        match self {
            AnyModel::Linear(m) => m.init_params(rng),
            AnyModel::Softmax(m) => m.init_params(rng),
        }
    }
}

/// Wire form of [`Targets`].
#[derive(Debug, Clone, PartialEq)]
pub enum TargetsSpec {
    /// One real target per sample.
    Regression(Vec<f64>),
    /// Class labels.
    Classes {
        /// Per-sample class indices.
        labels: Vec<u32>,
        /// Number of distinct classes.
        num_classes: u32,
    },
}

/// Wire form of [`Dataset`]: row-major features plus targets.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Row-major features, `len × dim`.
    pub x: Vec<f64>,
    /// The targets.
    pub targets: TargetsSpec,
    /// Feature dimension.
    pub dim: u32,
}

impl DatasetSpec {
    /// Snapshots an in-memory dataset for the wire.
    pub fn from_dataset(data: &Dataset) -> Self {
        let mut x = Vec::with_capacity(data.len() * data.dim());
        for i in 0..data.len() {
            x.extend_from_slice(data.features_of(i));
        }
        let targets = match data.targets() {
            Targets::Regression(y) => TargetsSpec::Regression(y.clone()),
            Targets::Classes {
                labels,
                num_classes,
            } => TargetsSpec::Classes {
                labels: labels.iter().map(|&l| l as u32).collect(),
                num_classes: *num_classes as u32,
            },
        };
        DatasetSpec {
            x,
            targets,
            dim: data.dim() as u32,
        }
    }

    /// Rebuilds the dataset on the worker side.
    ///
    /// # Errors
    ///
    /// A human-readable message when the shapes are inconsistent (the
    /// wire decoder validates syntax, this validates semantics).
    pub fn into_dataset(self) -> Result<Dataset, String> {
        let dim = self.dim as usize;
        if dim == 0 || !self.x.len().is_multiple_of(dim) {
            return Err(format!(
                "dataset features ({}) are not a multiple of dim {dim}",
                self.x.len()
            ));
        }
        let n = self.x.len() / dim;
        let targets = match self.targets {
            TargetsSpec::Regression(y) => Targets::Regression(y),
            TargetsSpec::Classes {
                labels,
                num_classes,
            } => {
                let num_classes = num_classes as usize;
                let labels: Vec<usize> = labels.into_iter().map(|l| l as usize).collect();
                if labels.iter().any(|&l| l >= num_classes) {
                    return Err("class label out of range".to_owned());
                }
                Targets::Classes {
                    labels,
                    num_classes,
                }
            }
        };
        if targets.len() != n {
            return Err(format!(
                "dataset has {n} samples but {} targets",
                targets.len()
            ));
        }
        Ok(Dataset::new(self.x, targets, dim))
    }
}
