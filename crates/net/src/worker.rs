//! The socket worker: the process-boundary counterpart of
//! `hetgc_runtime`'s worker thread. Connects, handshakes, then loops:
//! newest round → coded gradient → chunked streaming reply.
//!
//! The compute path is kept operation-for-operation identical to the
//! in-process worker thread (reusable `coded`/`partial` scratch, one
//! `gradient_into` per owned partition, `coded += coef · partial`), so a
//! socket run decodes to **bitwise** the same gradients as a threaded
//! run — the loopback equivalence tests pin exactly that.

use std::net::ToSocketAddrs;
use std::time::{Duration, Instant};

use hetgc_comm::{AnyWireCodec, ErrorFeedback, PayloadEncoding, WireCodec};
use hetgc_ml::{Dataset, Model};
use hetgc_obs::{Counter, Histogram, MetricsRegistry};
use hetgc_runtime::WorkerBehavior;

use crate::conn::Connection;
use crate::error::NetError;
use crate::frame::{Frame, VERSION};
use crate::spec::{AnyModel, Handshake};

/// Mutable per-worker state the master can rewrite mid-run via
/// [`Frame::Recode`].
struct Assignment {
    row: u32,
    ranges: Vec<(usize, usize)>,
    coefficients: Vec<f64>,
}

/// Runs the worker protocol over a fresh connection to `addr`: sends
/// `Hello`, applies the returned [`Handshake`], then serves rounds until
/// `Shutdown` (clean `Ok`) or the master hangs up (also a clean `Ok` —
/// masters may exit abruptly).
///
/// # Errors
///
/// Protocol violations, handshake inconsistencies and transport failures
/// other than a plain disconnect.
pub fn run_worker<A: ToSocketAddrs>(addr: A) -> Result<(), NetError> {
    run_worker_with_metrics(addr, None)
}

/// [`run_worker`] with an optional worker-side metrics registry: rounds
/// served, rounds skipped (fail-stop emulation), and a compute-latency
/// histogram, all labelled by the handshake-assigned worker row. The
/// `hetgc-worker` binary wires this to `--metrics-addr`.
///
/// # Errors
///
/// Same contract as [`run_worker`].
pub fn run_worker_with_metrics<A: ToSocketAddrs>(
    addr: A,
    registry: Option<MetricsRegistry>,
) -> Result<(), NetError> {
    let mut conn = Connection::connect(addr)?;
    conn.send(&Frame::Hello {
        version: VERSION,
        encodings: PayloadEncoding::advertised(),
    })?;
    let handshake = match conn.recv()? {
        Frame::Handshake(h) => h,
        other => {
            return Err(NetError::Handshake(format!(
                "expected a handshake, got {other:?}"
            )))
        }
    };
    let metrics = registry
        .as_ref()
        .map(|r| WorkerMetrics::new(r, handshake.worker));
    serve(conn, handshake, metrics)
}

/// The worker-side metric families, labelled by the worker's
/// handshake-assigned row (stable across mid-run recodes).
struct WorkerMetrics {
    rounds: Counter,
    skipped: Counter,
    compute: Histogram,
}

impl WorkerMetrics {
    fn new(registry: &MetricsRegistry, worker: u32) -> Self {
        let labels = [("worker", worker.to_string())];
        let labels: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
        WorkerMetrics {
            rounds: registry.counter(
                "hetgc_worker_rounds_total",
                "Coded-gradient rounds computed and streamed back",
                &labels,
            ),
            skipped: registry.counter(
                "hetgc_worker_rounds_skipped_total",
                "Rounds dropped by the fail-stop behaviour schedule",
                &labels,
            ),
            compute: registry.histogram(
                "hetgc_worker_compute_seconds",
                "Per-round coded-gradient compute time (includes emulated throttle)",
                &labels,
            ),
        }
    }
}

/// The round loop over an already-handshaken connection.
fn serve(
    mut conn: Connection,
    handshake: Handshake,
    metrics: Option<WorkerMetrics>,
) -> Result<(), NetError> {
    let Handshake {
        worker,
        num_params,
        chunk_len,
        ranges,
        coefficients,
        behavior,
        model,
        dataset,
        encoding,
    } = handshake;
    let model = model.build();
    if model.num_params() != num_params as usize {
        return Err(NetError::Handshake(format!(
            "model has {} params, handshake says {num_params}",
            model.num_params()
        )));
    }
    let data = dataset.into_dataset().map_err(NetError::Handshake)?;
    let behavior = behavior.to_behavior();
    let chunk_len = (chunk_len as usize).max(1);
    let mut assignment = Assignment {
        row: worker,
        ranges: to_usize_ranges(&ranges),
        coefficients,
    };

    // Reusable compute buffers, as in the threaded worker: the only
    // per-round allocations are the outgoing frame encodings.
    let mut coded: Vec<f64> = Vec::new();
    let mut partial: Vec<f64> = Vec::new();
    // On a lossy link the coded partial is quantized before it ships;
    // the quantization residual is carried into the next round (EF-SGD)
    // so lossy traffic does not bias convergence. The scratch buffers
    // reach steady-state capacity after the first round.
    let mut lossy = (encoding != PayloadEncoding::F64).then(|| LossyLink {
        codec: AnyWireCodec::for_encoding(encoding),
        feedback: ErrorFeedback::new(num_params as usize),
        wire: Vec::new(),
        roundtrip: vec![0.0; num_params as usize],
    });
    loop {
        let mut frame = match conn.recv() {
            Ok(f) => f,
            Err(NetError::Closed) => return Ok(()), // master gone: clean exit
            Err(e) => return Err(e),
        };
        // Fast-forward to the newest pending round, applying control
        // frames (recode, shutdown) strictly in arrival order — TCP
        // guarantees a recode is seen before any round encoded with it.
        let mut current: Option<(u64, Vec<f64>)> = None;
        loop {
            match frame {
                Frame::Shutdown => return Ok(()),
                Frame::Recode {
                    row,
                    ranges,
                    coefficients,
                } => {
                    assignment = Assignment {
                        row,
                        ranges: to_usize_ranges(&ranges),
                        coefficients,
                    };
                }
                Frame::Round { seq, params } => current = Some((seq, params)),
                // Anything else is not ours to receive; tolerate it so a
                // newer master can extend the protocol.
                _ => {}
            }
            match conn.try_recv() {
                Ok(Some(next)) => frame = next,
                Ok(None) => break,
                Err(NetError::Closed) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
        let Some((seq, params)) = current else {
            continue;
        };
        if !behavior.responds_at(seq as usize) {
            // Fail-stop emulation: keep draining frames, never reply.
            if let Some(m) = &metrics {
                m.skipped.inc();
            }
            continue;
        }
        let started = Instant::now();
        compute_coded(
            &model,
            &data,
            &assignment,
            &params,
            &mut coded,
            &mut partial,
        );
        throttle(&behavior, &assignment, seq, started);
        if let Some(m) = &metrics {
            m.rounds.inc();
            m.compute.observe(started.elapsed().as_secs_f64());
        }
        match &mut lossy {
            Some(link) => stream_encoded_reply(
                &mut conn,
                &assignment,
                seq,
                &mut coded,
                chunk_len,
                started,
                link,
            )?,
            None => stream_reply(&mut conn, &assignment, seq, &coded, chunk_len, started)?,
        }
    }
}

/// Per-link state of a lossy (non-`f64`) wire encoding.
struct LossyLink {
    codec: AnyWireCodec,
    feedback: ErrorFeedback,
    /// Reused encode buffer for one chunk's wire bytes.
    wire: Vec<u8>,
    /// Reused dequantized image of the whole coded partial — what the
    /// master will reconstruct, and hence what feeds error feedback.
    roundtrip: Vec<f64>,
}

fn to_usize_ranges(ranges: &[(u32, u32)]) -> Vec<(usize, usize)> {
    ranges
        .iter()
        .map(|&(lo, hi)| (lo as usize, hi as usize))
        .collect()
}

/// `coded = Σ_p coef_p · ∇L(params; partition p)` — the identical
/// accumulation (and operation order) the in-process worker performs.
fn compute_coded(
    model: &AnyModel,
    data: &Dataset,
    assignment: &Assignment,
    params: &[f64],
    coded: &mut Vec<f64>,
    partial: &mut Vec<f64>,
) {
    coded.clear();
    coded.resize(model.num_params(), 0.0);
    partial.clear();
    partial.resize(model.num_params(), 0.0);
    for (&range, &coef) in assignment.ranges.iter().zip(&assignment.coefficients) {
        model.gradient_into(params, data, range, partial);
        for (c, gi) in coded.iter_mut().zip(partial.iter()) {
            *c += coef * gi;
        }
    }
}

/// Heterogeneity emulation: stretch the iteration to the configured
/// samples/second rate, then add the injected delay — so the master's
/// telemetry observes the worker's *emulated* speed over a real link.
fn throttle(behavior: &WorkerBehavior, assignment: &Assignment, seq: u64, started: Instant) {
    if let Some(rate) = behavior.throttle_at(seq as usize) {
        let samples: usize = assignment.ranges.iter().map(|(lo, hi)| hi - lo).sum();
        let target = Duration::from_secs_f64(samples as f64 / rate);
        let compute = started.elapsed();
        if target > compute {
            std::thread::sleep(target - compute);
        }
    }
    if !behavior.extra_delay.is_zero() {
        std::thread::sleep(behavior.extra_delay);
    }
}

/// Streams the coded gradient as [`Frame::GradientChunk`]s followed by
/// [`Frame::RoundDone`]. Chunking bounds frame size and overlaps wire
/// transfer with serialization: chunk `i` is in the kernel's send buffer
/// while chunk `i+1` is still being encoded.
fn stream_reply(
    conn: &mut Connection,
    assignment: &Assignment,
    seq: u64,
    coded: &[f64],
    chunk_len: usize,
    started: Instant,
) -> Result<(), NetError> {
    let total = coded.len() as u32;
    for (i, chunk) in coded.chunks(chunk_len).enumerate() {
        conn.send(&Frame::GradientChunk {
            seq,
            worker: assignment.row,
            offset: (i * chunk_len) as u32,
            total,
            data: chunk.to_vec(),
        })?;
    }
    conn.send(&Frame::RoundDone {
        seq,
        worker: assignment.row,
        // Effective duration including throttle/delay sleeps — the
        // emulated speed, exactly what the threaded worker reports.
        compute_seconds: started.elapsed().as_secs_f64(),
        wire_error: None,
    })
}

/// [`stream_reply`]'s lossy sibling: folds the carried error-feedback
/// residual into the coded partial, quantizes it chunk by chunk into
/// [`Frame::EncodedChunk`]s, absorbs what quantization dropped back into
/// the accumulator, and reports the round's measured quantization error
/// on the [`Frame::RoundDone`].
#[allow(clippy::too_many_arguments)]
fn stream_encoded_reply(
    conn: &mut Connection,
    assignment: &Assignment,
    seq: u64,
    coded: &mut [f64],
    chunk_len: usize,
    started: Instant,
    link: &mut LossyLink,
) -> Result<(), NetError> {
    link.feedback.apply(coded);
    let total = coded.len() as u32;
    let encoding = link.codec.encoding();
    let mut err_sq = 0.0;
    for (i, (chunk, ship)) in coded
        .chunks(chunk_len)
        .zip(link.roundtrip.chunks_mut(chunk_len))
        .enumerate()
    {
        err_sq += link.codec.encode_roundtrip(chunk, &mut link.wire, ship)?;
        conn.send(&Frame::EncodedChunk {
            seq,
            worker: assignment.row,
            offset: (i * chunk_len) as u32,
            total,
            encoding,
            bytes: link.wire.clone(),
        })?;
    }
    link.feedback.absorb(coded, &link.roundtrip);
    conn.send(&Frame::RoundDone {
        seq,
        worker: assignment.row,
        compute_seconds: started.elapsed().as_secs_f64(),
        wire_error: Some(err_sq.sqrt()),
    })
}
