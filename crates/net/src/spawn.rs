//! Worker-process lifecycle for tests, benches and fault drills: spawn a
//! fleet of `hetgc-worker` binaries against a master address, kill
//! individual members mid-run to inject faults, and reap everything on
//! drop.

use std::process::{Child, Command, Stdio};

/// A set of spawned worker processes tied to one master.
///
/// Dropping the fleet kills and reaps every still-running child, so a
/// panicking test cannot leak orphan workers.
#[derive(Debug, Default)]
pub struct WorkerFleet {
    bin: String,
    children: Vec<Option<Child>>,
}

impl WorkerFleet {
    /// Spawns `count` copies of the worker binary at `bin`, each told to
    /// connect to `addr`. In tests and benches of this crate, pass
    /// `env!("CARGO_BIN_EXE_hetgc-worker")`.
    ///
    /// Worker stdout is discarded; stderr is inherited so worker-side
    /// errors surface in test output.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures (missing binary, resource limits).
    pub fn spawn(bin: &str, addr: &str, count: usize) -> std::io::Result<Self> {
        let mut fleet = WorkerFleet {
            bin: bin.to_owned(),
            children: Vec::with_capacity(count),
        };
        for _ in 0..count {
            fleet.spawn_with_args(&[addr])?;
        }
        Ok(fleet)
    }

    /// Spawns one more worker with an explicit argument vector — e.g.
    /// `&[addr, "--metrics-addr", "127.0.0.1:9101"]` for a worker that
    /// serves its own exposition endpoint. The child joins the fleet and
    /// is reaped with it.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures.
    pub fn spawn_with_args(&mut self, args: &[&str]) -> std::io::Result<()> {
        let child = Command::new(&self.bin)
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()?;
        self.children.push(Some(child));
        Ok(())
    }

    /// Number of workers originally spawned.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Fault injection: kill worker `i` (spawn order) with SIGKILL — a
    /// fail-stop crash, no goodbye frame. Idempotent; reaps the child so
    /// it does not linger as a zombie.
    pub fn kill(&mut self, i: usize) {
        if let Some(child) = self.children.get_mut(i).and_then(Option::take) {
            reap(child);
        }
    }
}

impl Drop for WorkerFleet {
    fn drop(&mut self) {
        for child in self.children.iter_mut().filter_map(Option::take) {
            reap(child);
        }
    }
}

fn reap(mut child: Child) {
    let _ = child.kill();
    let _ = child.wait();
}
