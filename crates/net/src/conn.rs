//! Blocking framed transport over `std::net::TcpStream` — no external
//! dependencies, no async runtime.
//!
//! A [`Connection`] owns a persistent accumulation buffer, so a read
//! that returns mid-frame (short read, timeout, nonblocking probe) never
//! corrupts framing: the partial bytes stay buffered and the next
//! receive resumes exactly where the stream left off. Byte counters are
//! shared `AtomicU64`s so a master can aggregate real traffic across
//! every worker connection (and its reader threads) into per-round
//! `bytes_sent`/`bytes_received` telemetry.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::NetError;
use crate::frame::Frame;

/// A framed, counted, blocking connection.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    /// Bytes received but not yet consumed as complete frames.
    pending: Vec<u8>,
    sent: Arc<AtomicU64>,
    received: Arc<AtomicU64>,
}

impl Connection {
    /// Wraps an accepted/connected stream with fresh byte counters.
    pub fn new(stream: TcpStream) -> Self {
        Self::with_counters(stream, Arc::default(), Arc::default())
    }

    /// Wraps a stream, accounting traffic into the given shared counters
    /// — how a master aggregates all worker links into one pair of
    /// totals.
    pub fn with_counters(
        stream: TcpStream,
        sent: Arc<AtomicU64>,
        received: Arc<AtomicU64>,
    ) -> Self {
        // Frames are already batched writes; Nagle only adds latency to
        // the round trip. Best-effort: some platforms may refuse.
        let _ = stream.set_nodelay(true);
        Connection {
            stream,
            pending: Vec::new(),
            sent,
            received,
        }
    }

    /// Connects to `addr` with fresh counters.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        Ok(Self::new(TcpStream::connect(addr)?))
    }

    /// The underlying stream (for `try_clone`, shutdown, timeouts).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Total bytes written so far (into the shared counter).
    pub fn bytes_sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Total bytes read so far (into the shared counter).
    pub fn bytes_received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }

    /// Encodes and writes one frame.
    ///
    /// # Errors
    ///
    /// Propagates write failures (a dead peer surfaces here as
    /// [`NetError::Io`]).
    pub fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        self.send_encoded(&frame.encode())
    }

    /// Writes pre-encoded frame bytes — lets a master encode a broadcast
    /// once and fan the same bytes out to every worker.
    ///
    /// # Errors
    ///
    /// As for [`Connection::send`].
    pub fn send_encoded(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.stream.write_all(bytes)?;
        self.sent.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Receives one frame, blocking until it is complete.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] on EOF, [`NetError::Wire`] on protocol
    /// violations, [`NetError::Io`] on transport failures.
    pub fn recv(&mut self) -> Result<Frame, NetError> {
        self.recv_deadline(None)
    }

    /// Receives one frame, giving up [`NetError::Timeout`] once
    /// `deadline` (a remaining duration from now) has passed. Partial
    /// bytes read before the timeout stay buffered — the frame is
    /// finished by a later receive, never corrupted.
    ///
    /// # Errors
    ///
    /// As for [`Connection::recv`], plus [`NetError::Timeout`].
    pub fn recv_deadline(&mut self, deadline: Option<Duration>) -> Result<Frame, NetError> {
        let started = Instant::now();
        loop {
            if let Some((frame, consumed)) = Frame::decode_prefix(&self.pending)? {
                self.pending.drain(..consumed);
                return Ok(frame);
            }
            let remaining = match deadline {
                Some(d) => match d.checked_sub(started.elapsed()) {
                    Some(r) if !r.is_zero() => Some(r),
                    _ => return Err(NetError::Timeout),
                },
                None => None,
            };
            self.stream.set_read_timeout(remaining)?;
            let mut buf = [0u8; 64 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(NetError::Closed),
                Ok(n) => {
                    self.received.fetch_add(n as u64, Ordering::Relaxed);
                    self.pending.extend_from_slice(&buf[..n]);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Err(NetError::Timeout)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Nonblocking probe: returns a complete frame if one is available
    /// (buffered or readable right now), `None` otherwise. Used by the
    /// worker's fast-forward drain — catch up to the newest round instead
    /// of replaying rounds the master already decoded without it.
    ///
    /// # Errors
    ///
    /// As for [`Connection::recv`]; `None` is *not* an error.
    pub fn try_recv(&mut self) -> Result<Option<Frame>, NetError> {
        if let Some((frame, consumed)) = Frame::decode_prefix(&self.pending)? {
            self.pending.drain(..consumed);
            return Ok(Some(frame));
        }
        self.stream.set_nonblocking(true)?;
        let result = loop {
            let mut buf = [0u8; 64 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => break Err(NetError::Closed),
                Ok(n) => {
                    self.received.fetch_add(n as u64, Ordering::Relaxed);
                    self.pending.extend_from_slice(&buf[..n]);
                    if let Some((frame, consumed)) = Frame::decode_prefix(&self.pending)? {
                        self.pending.drain(..consumed);
                        break Ok(Some(frame));
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break Ok(None),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => break Err(NetError::Io(e)),
            }
        };
        // Restore blocking mode even on error paths.
        self.stream.set_nonblocking(false)?;
        result
    }
}
