//! Standalone socket worker: `hetgc-worker <master-addr>`.
//!
//! Connects to a `SocketCluster` master, handshakes, and serves coded
//! gradient rounds until told to shut down. One process per coding-matrix
//! row; the master assigns the row at accept time.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else {
        eprintln!("usage: hetgc-worker <master-addr>");
        return ExitCode::FAILURE;
    };
    match hetgc_net::run_worker(addr.as_str()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hetgc-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
