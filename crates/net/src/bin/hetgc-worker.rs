//! Standalone socket worker: `hetgc-worker <master-addr> [--metrics-addr <addr>]`.
//!
//! Connects to a `SocketCluster` master, handshakes, and serves coded
//! gradient rounds until told to shut down. One process per coding-matrix
//! row; the master assigns the row at accept time.
//!
//! With `--metrics-addr` the worker also serves a Prometheus
//! text-exposition `/metrics` endpoint (rounds served/skipped, compute
//! latency histogram) for the lifetime of the process.

use std::process::ExitCode;

use hetgc_obs::{MetricsRegistry, MetricsServer};

const USAGE: &str = "usage: hetgc-worker <master-addr> [--metrics-addr <addr>]";

fn main() -> ExitCode {
    let mut master: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-addr" => {
                let Some(addr) = args.next() else {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                };
                metrics_addr = Some(addr);
            }
            _ if master.is_none() => master = Some(arg),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = master else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let mut registry = None;
    let mut _server = None;
    if let Some(metrics_addr) = metrics_addr {
        let r = MetricsRegistry::new();
        match MetricsServer::start(&metrics_addr, r.clone()) {
            Ok(server) => {
                eprintln!("hetgc-worker: serving /metrics on {}", server.addr());
                _server = Some(server);
                registry = Some(r);
            }
            Err(e) => {
                eprintln!("hetgc-worker: cannot bind metrics endpoint {metrics_addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match hetgc_net::run_worker_with_metrics(addr.as_str(), registry) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hetgc-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
