//! The socket master: [`SocketCluster`] is `ThreadedCluster`'s shape —
//! dispatch / collect / decode-or-escalate / recode — executed over real
//! TCP connections to `hetgc-worker` processes instead of channels to
//! threads.
//!
//! One reader thread per worker link reassembles chunked gradient frames
//! and forwards completed replies into a single crossbeam channel, so the
//! master's collect loop is line-for-line the threaded one: a
//! `recv_timeout` race between arrivals and the escalation deadline, with
//! stale-round replies demoted to late-timing telemetry. The differences
//! are exactly the ones a real network forces: a dead peer is detected
//! (broken write / EOF) rather than impossible, a round's traffic is
//! metered in real bytes, and re-coding talks to the *surviving*
//! connections instead of respawning threads.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use hetgc_cluster::PartitionAssignment;
use hetgc_coding::{CodingMatrix, DecodePlan, EscalatingCodec, GradientCodec};
use hetgc_comm::{AnyWireCodec, PayloadEncoding, WireCodec};
use hetgc_ml::{Dataset, Model};
use hetgc_obs::{MetricsRegistry, Phase, Recorder};
use hetgc_runtime::{build_codec, RuntimeConfig};

use crate::conn::Connection;
use crate::error::NetError;
use crate::frame::{Frame, VERSION};
use crate::spec::{BehaviorSpec, DatasetSpec, Handshake, ModelSpec};

/// Default gradient chunk granularity: 8192 `f64`s = 64 KiB of payload
/// per [`Frame::GradientChunk`] — large enough to amortize framing,
/// small enough that transfer overlaps the worker's ongoing serialization
/// and no frame approaches the protocol cap.
pub const DEFAULT_CHUNK_LEN: usize = 8192;

/// How long [`SocketCluster::start`] waits for all workers to connect.
const ACCEPT_DEADLINE: Duration = Duration::from_secs(30);

/// One completed collect round of a [`SocketCluster`] — the threaded
/// `ClusterRound` plus real network observations.
#[derive(Debug, Clone)]
pub struct SocketRound {
    /// The decoded aggregated gradient `Σ_w a_w · g̃_w`, un-normalized.
    pub gradient: Vec<f64>,
    /// Decode residual (0.0 exact, positive when escalation rescued it).
    pub residual: f64,
    /// How many worker results carried decode weight.
    pub results_used: usize,
    /// Wall-clock duration of the round (dispatch → decoded gradient).
    pub elapsed: Duration,
    /// Per-worker (logical row) compute seconds reported this round.
    pub busy: Vec<f64>,
    /// Per-worker compute seconds of late (previous-round) replies,
    /// reported exactly once — same contract as the threaded cluster.
    pub late_busy: Vec<f64>,
    /// Per-worker arrival offset in seconds from the dispatch — a *real*
    /// master-side observation (the threaded runtime can only approximate
    /// arrival by compute end). `0.0` for workers that never replied.
    pub arrivals: Vec<f64>,
    /// Bytes of reassembled coded-gradient payload this round consumed.
    pub alloc_bytes: u64,
    /// Decode-session buffer-pool hits this round.
    pub pool_hits: u64,
    /// Real bytes written to worker sockets during this round.
    pub bytes_sent: u64,
    /// Real bytes read from worker sockets during this round.
    pub bytes_received: u64,
    /// Per physical link `(sent, received)` byte deltas of this round —
    /// the link-resolved breakdown of `bytes_sent` / `bytes_received`,
    /// indexed by accept order (not logical row; `row_of` maps).
    pub link_bytes: Vec<(u64, u64)>,
    /// Combined L2 quantization error of this round's lossy wire traffic
    /// (`sqrt(Σ_w err_w²)` over the replies absorbed this round), as
    /// measured worker-side from the encode round trips. `0.0` when
    /// every link ships full-width `f64`.
    pub wire_error: f64,
    /// Payload bytes the negotiated wire encodings saved this round
    /// versus shipping every reply as full-width `f64`.
    pub bytes_saved: u64,
}

/// Cloneable per-link traffic handles: the byte counters shared with the
/// link's writer and reader halves, plus master-side frame counters.
/// Clones share the same atomic cells, so a metrics refresh hook can
/// capture a snapshot-free handle and read live totals without touching
/// the cluster.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    sent_bytes: Arc<AtomicU64>,
    received_bytes: Arc<AtomicU64>,
    frames_sent: Arc<AtomicU64>,
    frames_received: Arc<AtomicU64>,
}

impl LinkStats {
    /// Bytes written to this link's socket since start.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes.load(Ordering::Relaxed)
    }

    /// Bytes read from this link's socket since start.
    pub fn received_bytes(&self) -> u64 {
        self.received_bytes.load(Ordering::Relaxed)
    }

    /// Frames the master wrote to this link (rounds, recodes, handshake).
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.load(Ordering::Relaxed)
    }

    /// Frames the master's reader thread decoded off this link.
    pub fn frames_received(&self) -> u64 {
        self.frames_received.load(Ordering::Relaxed)
    }
}

/// Publishes every link's live traffic totals into `registry` as gauges
/// labelled by link index — the pull half of the exposition endpoint:
/// capture `SocketCluster::link_stats` clones in a refresh hook and call
/// this before each scrape.
pub fn export_link_metrics(registry: &MetricsRegistry, links: &[LinkStats]) {
    for (i, link) in links.iter().enumerate() {
        let l = i.to_string();
        let labels = [("link", l.as_str())];
        registry
            .gauge(
                "hetgc_link_sent_bytes",
                "Bytes written to the link",
                &labels,
            )
            .set(link.sent_bytes() as f64);
        registry
            .gauge(
                "hetgc_link_received_bytes",
                "Bytes read from the link",
                &labels,
            )
            .set(link.received_bytes() as f64);
        registry
            .gauge(
                "hetgc_link_frames_sent",
                "Frames the master wrote to the link",
                &labels,
            )
            .set(link.frames_sent() as f64);
        registry
            .gauge(
                "hetgc_link_frames_received",
                "Frames decoded off the link",
                &labels,
            )
            .set(link.frames_received() as f64);
    }
}

/// A completed worker reply, reassembled by a reader thread.
#[derive(Debug)]
struct Reply {
    worker: usize,
    seq: u64,
    coded: Vec<f64>,
    compute_seconds: f64,
    /// Worker-measured L2 quantization error of this reply (0.0 on
    /// lossless links).
    wire_error: f64,
    /// Gradient payload bytes this reply occupied on the wire (codec
    /// output for encoded links, `8 · num_params` for `f64`).
    payload_bytes: u64,
    /// When the final frame of the reply hit the master.
    arrived: Instant,
}

/// A bound-but-not-yet-accepting master endpoint: bind first, learn the
/// port, hand the address to the worker processes, then accept.
#[derive(Debug)]
pub struct SocketListener {
    listener: TcpListener,
    addr: SocketAddr,
}

impl SocketListener {
    /// Binds an ephemeral loopback port.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind() -> Result<Self, NetError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        Ok(SocketListener { listener, addr })
    }

    /// The address workers should connect to (`hetgc-worker <addr>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// A running socket worker pool: the master ends of `m` TCP links, one
/// reader thread per link, and the same escalation-wrapped decode state
/// the threaded cluster keeps. Built by [`SocketCluster::start`] after
/// the worker processes have been pointed at a [`SocketListener`].
///
/// Logical coding-matrix rows and physical connections start out
/// identical; [`SocketCluster::recode`] may shrink the logical side to
/// the surviving connections, with `row_of` carrying the mapping.
#[derive(Debug)]
pub struct SocketCluster<M> {
    codec: EscalatingCodec,
    model: Arc<M>,
    data: Arc<Dataset>,
    config: RuntimeConfig,
    timeout: Option<Duration>,
    /// Writer side of each physical link, in accept order.
    conns: Vec<Connection>,
    /// Liveness per physical link — cleared by its reader thread on
    /// EOF/error, or by the master on a failed write.
    alive: Vec<Arc<AtomicBool>>,
    /// Logical row → physical connection index (identity at start).
    row_of: Vec<usize>,
    reply_rx: Receiver<Reply>,
    handles: Vec<std::thread::JoinHandle<()>>,
    session: hetgc_coding::CodecSession,
    /// Per-logical-row arrival slots, reused round over round.
    received: Vec<Option<Vec<f64>>>,
    inflight: Option<(u64, Instant)>,
    compute_seconds: Vec<f64>,
    late_compute_seconds: Vec<f64>,
    arrival_seconds: Vec<f64>,
    round_seq: u64,
    chunk_len: usize,
    /// Per physical link traffic counters (writer + reader halves of link
    /// `c` share `links[c]`'s byte cells); aggregates are sums over this.
    links: Vec<LinkStats>,
    /// Per physical link negotiated payload encoding (accept order).
    encodings: Vec<PayloadEncoding>,
    /// Per-logical-row quantization error of the current round's replies.
    wire_errors: Vec<f64>,
    /// Per-logical-row gradient payload bytes of the current round's
    /// replies (0 = no reply this round).
    payload_bytes: Vec<u64>,
    /// Per-link `(sent, received)` totals snapshotted at the last
    /// dispatch, for per-round deltas.
    bytes_mark: Vec<(u64, u64)>,
    /// Flight recorder for the master's hot phases; `None` until
    /// attached.
    recorder: Option<Recorder>,
}

impl<M> SocketCluster<M>
where
    M: Model + Send + Sync + 'static,
{
    /// Accepts `code.workers()` worker connections on `listener`,
    /// handshakes each (shipping `spec`, the dataset, the behaviour
    /// schedule and its codec row), and spawns one reader thread per
    /// link. Workers are assigned logical rows in accept order.
    ///
    /// `model` must be the model `spec` describes — the master uses it
    /// for decode sizing, the workers rebuild their own from the spec.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] on codec/partitioning/spec problems,
    /// [`NetError::Handshake`] when workers fail to connect (30 s accept
    /// deadline) or speak a different protocol version.
    pub fn start(
        listener: SocketListener,
        code: CodingMatrix,
        model: Arc<M>,
        spec: ModelSpec,
        data: Arc<Dataset>,
        config: &RuntimeConfig,
    ) -> Result<Self, NetError> {
        Self::start_with(listener, code, model, spec, data, config, DEFAULT_CHUNK_LEN)
    }

    /// [`SocketCluster::start`] with an explicit gradient chunk length
    /// (in `f64`s per [`Frame::GradientChunk`]).
    ///
    /// # Errors
    ///
    /// As for [`SocketCluster::start`].
    pub fn start_with(
        listener: SocketListener,
        code: CodingMatrix,
        model: Arc<M>,
        spec: ModelSpec,
        data: Arc<Dataset>,
        config: &RuntimeConfig,
        chunk_len: usize,
    ) -> Result<Self, NetError> {
        Self::start_encoded(
            listener,
            code,
            model,
            spec,
            data,
            config,
            chunk_len,
            PayloadEncoding::F64,
        )
    }

    /// [`SocketCluster::start_with`] with a requested gradient payload
    /// encoding. The encoding is *negotiated per link*: a worker that
    /// advertises the capability in its `Hello` is handshaken onto
    /// `encoding`; one that does not (an older peer) keeps full-width
    /// [`PayloadEncoding::F64`] — never a silent misinterpretation, the
    /// two sides always agree frame by frame. [`Self::link_encodings`]
    /// exposes the negotiation outcome.
    ///
    /// # Errors
    ///
    /// As for [`SocketCluster::start`].
    #[allow(clippy::too_many_arguments)]
    pub fn start_encoded(
        listener: SocketListener,
        code: CodingMatrix,
        model: Arc<M>,
        spec: ModelSpec,
        data: Arc<Dataset>,
        config: &RuntimeConfig,
        chunk_len: usize,
        encoding: PayloadEncoding,
    ) -> Result<Self, NetError> {
        let codec = build_codec(code, config)?;
        if spec.build().num_params() != model.num_params() {
            return Err(NetError::InvalidConfig {
                reason: "model spec does not match the master's model".into(),
            });
        }
        let m = codec.workers();
        let chunk_len = chunk_len.max(1);
        let assignment = even_assignment(data.len(), codec.partitions())?;
        let dataset_spec = DatasetSpec::from_dataset(&data);
        let (reply_tx, reply_rx) = unbounded::<Reply>();

        let mut conns = Vec::with_capacity(m);
        let mut alive = Vec::with_capacity(m);
        let mut handles = Vec::with_capacity(m);
        let mut links = Vec::with_capacity(m);
        let mut encodings = Vec::with_capacity(m);
        listener.listener.set_nonblocking(true)?;
        let accept_started = Instant::now();
        for row in 0..m {
            let link = LinkStats::default();
            let stream = accept_one(&listener.listener, accept_started)?;
            let mut conn = Connection::with_counters(
                stream,
                Arc::clone(&link.sent_bytes),
                Arc::clone(&link.received_bytes),
            );
            let negotiated = match conn.recv_deadline(Some(
                ACCEPT_DEADLINE.saturating_sub(accept_started.elapsed()),
            )) {
                Ok(Frame::Hello { version, encodings }) if version == VERSION => {
                    // Per-link negotiation: the requested encoding only
                    // if the worker advertised it; older peers that sent
                    // no capability bytes stay on full-width f64.
                    if encoding != PayloadEncoding::F64 && encodings.contains(&encoding.to_byte()) {
                        encoding
                    } else {
                        PayloadEncoding::F64
                    }
                }
                Ok(Frame::Hello { version, .. }) => {
                    return Err(NetError::Handshake(format!(
                        "worker speaks protocol v{version}, master v{VERSION}"
                    )))
                }
                Ok(other) => {
                    return Err(NetError::Handshake(format!(
                        "expected hello, got {other:?}"
                    )))
                }
                Err(e) => return Err(NetError::Handshake(format!("hello not received: {e}"))),
            };
            let (ranges, coefficients) = row_assignment(&codec, &assignment, row)?;
            conn.send(&Frame::Handshake(Handshake {
                worker: row as u32,
                num_params: model.num_params() as u32,
                chunk_len: chunk_len as u32,
                ranges,
                coefficients,
                behavior: BehaviorSpec::from(&config.behavior_of(row)),
                model: spec,
                dataset: dataset_spec.clone(),
                encoding: negotiated,
            }))?;
            link.frames_sent.fetch_add(1, Ordering::Relaxed); // the handshake
            let live = Arc::new(AtomicBool::new(true));
            let reader = Connection::with_counters(
                conn.stream().try_clone()?,
                Arc::default(), // readers never send
                Arc::clone(&link.received_bytes),
            );
            handles.push(spawn_reader(
                reader,
                model.num_params(),
                negotiated,
                reply_tx.clone(),
                Arc::clone(&live),
                Arc::clone(&link.frames_received),
            ));
            alive.push(live);
            conns.push(conn);
            links.push(link);
            encodings.push(negotiated);
        }
        drop(reply_tx); // master keeps only the receiver
        let session = codec.session();
        Ok(SocketCluster {
            model,
            data,
            config: config.clone(),
            timeout: config.effective_timeout(),
            conns,
            alive,
            row_of: (0..m).collect(),
            reply_rx,
            handles,
            session,
            received: vec![None; m],
            inflight: None,
            compute_seconds: vec![0.0; m],
            late_compute_seconds: vec![0.0; m],
            arrival_seconds: vec![0.0; m],
            round_seq: 0,
            chunk_len,
            links,
            encodings,
            wire_errors: vec![0.0; m],
            payload_bytes: vec![0; m],
            bytes_mark: vec![(0, 0); m],
            recorder: None,
            codec,
        })
    }

    /// Number of (logical) workers in the current code.
    pub fn workers(&self) -> usize {
        self.codec.workers()
    }

    /// Number of data partitions.
    pub fn partitions(&self) -> usize {
        self.codec.partitions()
    }

    /// The escalation-wrapped codec the master decodes with.
    pub fn codec(&self) -> &EscalatingCodec {
        &self.codec
    }

    /// The model the workers compute gradients of.
    pub fn model(&self) -> &Arc<M> {
        &self.model
    }

    /// The training data.
    pub fn data(&self) -> &Arc<Dataset> {
        &self.data
    }

    /// Replaces the round deadline in place (learned-deadline hook).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = Some(timeout);
    }

    /// The gradient chunk granularity the workers were handshaken with
    /// (`f64`s per [`Frame::GradientChunk`]).
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Logical rows whose physical connection is still live.
    pub fn live_rows(&self) -> Vec<usize> {
        (0..self.codec.workers())
            .filter(|&j| self.alive[self.row_of[j]].load(Ordering::Relaxed))
            .collect()
    }

    /// Total real bytes written to worker sockets since start (the sum
    /// of every link's counter).
    pub fn bytes_sent(&self) -> u64 {
        self.links.iter().map(LinkStats::sent_bytes).sum()
    }

    /// Total real bytes read from worker sockets since start.
    pub fn bytes_received(&self) -> u64 {
        self.links.iter().map(LinkStats::received_bytes).sum()
    }

    /// Per physical link negotiated payload encoding, in accept order —
    /// the outcome of the `Hello` capability negotiation. A link shows
    /// [`PayloadEncoding::F64`] either because no compression was
    /// requested or because its worker did not advertise the requested
    /// encoding.
    pub fn link_encodings(&self) -> &[PayloadEncoding] {
        &self.encodings
    }

    /// Per physical link traffic handles (accept order). Clones share
    /// the live counters — capture them in a metrics refresh hook (see
    /// [`export_link_metrics`]) to publish per-link traffic without
    /// borrowing the cluster.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        self.links.clone()
    }

    /// Installs a flight recorder: every subsequent round emits
    /// dispatch/collect/decode spans, per-arrival instants (on the real
    /// arrival clock), and recode spans on hot swaps.
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Attaches cache/solve metric handles to the decode codec (fanned
    /// out through the whole escalation ladder). As with the threaded
    /// cluster, [`SocketCluster::recode`] builds a fresh codec —
    /// re-attach after hot swaps if continuity matters.
    pub fn attach_codec_metrics(&mut self, metrics: hetgc_obs::CodecMetrics) {
        self.codec.attach_metrics(metrics);
    }

    /// Runs one collect round: broadcast, gather, decode or escalate.
    ///
    /// # Errors
    ///
    /// As for [`SocketCluster::dispatch`] and [`SocketCluster::collect`].
    pub fn round(&mut self, iteration: usize, params: &[f64]) -> Result<SocketRound, NetError> {
        self.dispatch(params)?;
        self.collect(iteration)
    }

    /// Broadcasts `params` to every live worker and returns immediately —
    /// the first half of the split round cycle, encoded once and fanned
    /// out byte-identically to each link.
    ///
    /// Unlike the threaded dispatch, a failed send is **not** fatal: a
    /// real network must survive peer loss, so the link is marked dead
    /// (its worker simply never replies and the escalation ladder absorbs
    /// it) and the round proceeds. Only a fully dead fleet errors.
    ///
    /// # Errors
    ///
    /// * [`NetError::InvalidConfig`] when a round is already in flight.
    /// * [`NetError::WorkerLost`] when no live connection remains.
    pub fn dispatch(&mut self, params: &[f64]) -> Result<(), NetError> {
        if self.inflight.is_some() {
            return Err(NetError::InvalidConfig {
                reason: "dispatch while a round is in flight (collect it first)".into(),
            });
        }
        let _dispatch_span = self.recorder.as_ref().map(|r| r.span(Phase::Dispatch));
        self.round_seq += 1;
        let seq = self.round_seq;
        let encoded = Frame::Round {
            seq,
            params: params.to_vec(),
        }
        .encode();
        for (link, mark) in self.links.iter().zip(self.bytes_mark.iter_mut()) {
            *mark = (link.sent_bytes(), link.received_bytes());
        }
        let mut live = 0usize;
        let mut first_dead = 0usize;
        for j in 0..self.codec.workers() {
            let c = self.row_of[j];
            if !self.alive[c].load(Ordering::Relaxed) {
                first_dead = c;
                continue;
            }
            match self.conns[c].send_encoded(&encoded) {
                Ok(()) => {
                    live += 1;
                    self.links[c].frames_sent.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    // Broken pipe: the peer is gone. Demote the link and
                    // let the escalation ladder handle the missing reply.
                    self.alive[c].store(false, Ordering::Relaxed);
                    first_dead = c;
                }
            }
        }
        if live == 0 {
            return Err(NetError::WorkerLost { worker: first_dead });
        }
        self.inflight = Some((seq, Instant::now()));
        Ok(())
    }

    /// Collects the round started by the last [`SocketCluster::dispatch`]
    /// — the threaded collect loop verbatim, fed by the reader threads'
    /// shared reply channel. The escalation deadline runs from the
    /// dispatch; stale replies are demoted to late-timing telemetry; at
    /// the deadline the queue is drained (an exact decode may already be
    /// waiting) before the survivor set goes to the escalation ladder.
    ///
    /// # Errors
    ///
    /// * [`NetError::InvalidConfig`] when no round is in flight.
    /// * [`NetError::Undecodable`] when the round cannot decode within
    ///   the deadline and the ladder declines.
    pub fn collect(&mut self, iteration: usize) -> Result<SocketRound, NetError> {
        let (tag, started) = self
            .inflight
            .take()
            .ok_or_else(|| NetError::InvalidConfig {
                reason: "collect without a dispatched round".into(),
            })?;

        // Clone the recorder so the span guard borrows a local, not
        // `self` (absorb below needs `&mut self`).
        let recorder = self.recorder.clone();
        let collect_span = recorder.as_ref().map(|r| r.span(Phase::Collect));
        self.session.reset();
        let pool_hits_before = self.session.pool().hits();
        self.received.iter_mut().for_each(|slot| *slot = None);
        self.compute_seconds.iter_mut().for_each(|c| *c = 0.0);
        self.arrival_seconds.iter_mut().for_each(|a| *a = 0.0);
        self.wire_errors.iter_mut().for_each(|e| *e = 0.0);
        self.payload_bytes.iter_mut().for_each(|b| *b = 0);
        let mut fallback: Option<DecodePlan> = None;
        loop {
            let recv_result = match self.timeout {
                Some(t) => match t.checked_sub(started.elapsed()) {
                    Some(remaining) => self.reply_rx.recv_timeout(remaining).map_err(|_| ()),
                    None => Err(()), // deadline already passed
                },
                None => self.reply_rx.recv().map_err(|_| ()),
            };
            let reply = match recv_result {
                Ok(reply) => reply,
                Err(()) => {
                    // Deadline reached (or every reader thread exited)
                    // without an exact decode: drain the queue first,
                    // then consult the escalation ladder.
                    let mut drained = false;
                    while let Ok(reply) = self.reply_rx.try_recv() {
                        if self.absorb(tag, started, reply)? {
                            drained = true;
                            break;
                        }
                    }
                    if drained {
                        break;
                    }
                    let survivors: Vec<usize> = self
                        .received
                        .iter()
                        .enumerate()
                        .filter_map(|(w, slot)| slot.is_some().then_some(w))
                        .collect();
                    if let Some(plan) = self.codec.fallback_plan(&survivors) {
                        fallback = Some(plan);
                        break;
                    }
                    return Err(NetError::Undecodable {
                        iteration,
                        received: survivors.len(),
                    });
                }
            };
            if self.absorb(tag, started, reply)? {
                break;
            }
        }
        drop(collect_span);
        let plan = match fallback.as_ref() {
            Some(plan) => plan,
            None => self
                .session
                .decoded_plan()
                .expect("collect loop broke on a decode"),
        };

        let decode_span = self.recorder.as_ref().map(|r| r.span(Phase::Decode));
        let mut gradient = vec![0.0; self.model.num_params()];
        plan.apply_rows_into(|w| self.received[w].as_deref(), &mut gradient)?;
        drop(decode_span);
        let used = plan.len();
        let residual = plan.residual();
        let alloc_bytes = self
            .received
            .iter()
            .flatten()
            .map(|coded| std::mem::size_of_val(&coded[..]) as u64)
            .sum();
        let mut late_busy = vec![0.0; self.late_compute_seconds.len()];
        for (w, late) in self.late_compute_seconds.iter_mut().enumerate() {
            if self.compute_seconds[w] == 0.0 {
                late_busy[w] = *late;
            }
            *late = 0.0;
        }
        let link_bytes: Vec<(u64, u64)> = self
            .links
            .iter()
            .zip(&self.bytes_mark)
            .map(|(link, &(sent0, recv0))| {
                (link.sent_bytes() - sent0, link.received_bytes() - recv0)
            })
            .collect();
        // Quantization errors combine in quadrature (independent lossy
        // links); savings compare each reply's payload to the f64 width
        // it displaced.
        let wire_error = self.wire_errors.iter().map(|e| e * e).sum::<f64>().sqrt();
        let full_width = (self.model.num_params() * 8) as u64;
        let bytes_saved = self
            .payload_bytes
            .iter()
            .filter(|&&b| b > 0)
            .map(|&b| full_width.saturating_sub(b))
            .sum();
        Ok(SocketRound {
            gradient,
            residual,
            results_used: used,
            elapsed: started.elapsed(),
            busy: self.compute_seconds.clone(),
            late_busy,
            arrivals: self.arrival_seconds.clone(),
            alloc_bytes,
            pool_hits: self.session.pool().hits() - pool_hits_before,
            bytes_sent: link_bytes.iter().map(|&(s, _)| s).sum(),
            bytes_received: link_bytes.iter().map(|&(_, r)| r).sum(),
            link_bytes,
            wire_error,
            bytes_saved,
        })
    }

    /// Feeds one reply into the round state; `Ok(true)` when it completed
    /// an exact decode. Stale-round replies become late-timing telemetry
    /// (out-of-range rows from a pre-recode regime are dropped).
    fn absorb(&mut self, tag: u64, started: Instant, reply: Reply) -> Result<bool, NetError> {
        let worker = reply.worker;
        if reply.seq != tag {
            if let Some(slot) = self.late_compute_seconds.get_mut(worker) {
                *slot = reply.compute_seconds;
            }
            return Ok(false);
        }
        if worker >= self.received.len() {
            return Ok(false);
        }
        self.compute_seconds[worker] = reply.compute_seconds;
        self.wire_errors[worker] = reply.wire_error;
        self.payload_bytes[worker] = reply.payload_bytes;
        self.arrival_seconds[worker] = reply
            .arrived
            .saturating_duration_since(started)
            .as_secs_f64();
        if let Some(rec) = &self.recorder {
            // The instant is stamped at absorb time; the true arrival
            // clock (reader-thread receipt) rides in the round sample.
            rec.instant(Phase::Arrival, (worker + 1) as u64);
        }
        self.received[worker] = Some(reply.coded);
        Ok(self.session.push_arrival(worker)?)
    }

    /// Hot-swaps a rebuilt coding strategy onto the **surviving**
    /// connections: the new matrix (which must have exactly one row per
    /// live link) is compiled into the configured backend + escalation
    /// policy, and each survivor receives a [`Frame::Recode`] carrying
    /// its new row, sample ranges and coefficients. TCP ordering makes an
    /// acknowledgement unnecessary: a worker applies the recode before
    /// any round dispatched after it, and replies to older rounds are
    /// already filtered by sequence number.
    ///
    /// Unlike the threaded hot-swap, nothing is respawned — the processes
    /// keep their dataset and behaviour; only row/shard/coefficients
    /// change. Behaviour schedules therefore stay pinned to the physical
    /// process, not the logical row.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] when the matrix does not match the
    /// live-connection count or cannot be compiled/partitioned — the old
    /// regime keeps running in that case. A send failure to a survivor
    /// surfaces as [`NetError::WorkerLost`].
    pub fn recode(&mut self, code: CodingMatrix) -> Result<(), NetError> {
        if self.inflight.is_some() {
            return Err(NetError::InvalidConfig {
                reason: "recode while a round is in flight (collect it first)".into(),
            });
        }
        let live: Vec<usize> = (0..self.alive.len())
            .filter(|&c| self.alive[c].load(Ordering::Relaxed))
            .collect();
        if code.workers() != live.len() {
            return Err(NetError::InvalidConfig {
                reason: format!(
                    "recode matrix has {} rows but {} live connections",
                    code.workers(),
                    live.len()
                ),
            });
        }
        let _recode_span = self.recorder.as_ref().map(|r| r.span(Phase::Recode));
        let codec = build_codec(code, &self.config)?;
        let assignment = even_assignment(self.data.len(), codec.partitions())?;
        for (j, &c) in live.iter().enumerate() {
            let (ranges, coefficients) = row_assignment(&codec, &assignment, j)?;
            let frame = Frame::Recode {
                row: j as u32,
                ranges,
                coefficients,
            };
            if self.conns[c].send(&frame).is_err() {
                self.alive[c].store(false, Ordering::Relaxed);
                return Err(NetError::WorkerLost { worker: c });
            }
            self.links[c].frames_sent.fetch_add(1, Ordering::Relaxed);
        }
        let m = codec.workers();
        self.session = codec.session();
        self.received = vec![None; m];
        self.compute_seconds = vec![0.0; m];
        self.late_compute_seconds = vec![0.0; m];
        self.arrival_seconds = vec![0.0; m];
        self.wire_errors = vec![0.0; m];
        self.payload_bytes = vec![0; m];
        self.row_of = live;
        self.codec = codec;
        Ok(())
    }

    /// Shuts the worker processes down (best-effort `Shutdown` frames),
    /// closes the links and joins the reader threads. Equivalent to
    /// dropping the cluster, but explicit.
    pub fn shutdown(self) {}
}

impl<M> Drop for SocketCluster<M> {
    fn drop(&mut self) {
        let goodbye = Frame::Shutdown.encode();
        for conn in &mut self.conns {
            let _ = conn.send_encoded(&goodbye);
            // Closing our end unblocks the reader thread on the cloned fd.
            let _ = conn.stream().shutdown(std::net::Shutdown::Both);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// `PartitionAssignment::even` with the runtime's error shape.
fn even_assignment(samples: usize, partitions: usize) -> Result<PartitionAssignment, NetError> {
    PartitionAssignment::even(samples, partitions).map_err(|e| NetError::InvalidConfig {
        reason: format!("partitioning failed: {e}"),
    })
}

/// A row's marching orders in wire form: sample ranges (from the codec's
/// precompiled CSR support) and the aligned coefficients.
type RowAssignment = (Vec<(u32, u32)>, Vec<f64>);

fn row_assignment(
    codec: &EscalatingCodec,
    assignment: &PartitionAssignment,
    row: usize,
) -> Result<RowAssignment, NetError> {
    let compiled = codec.base().as_compiled();
    let mut ranges = Vec::new();
    for &p in compiled.support_of(row) {
        let (lo, hi) = assignment.range(p).map_err(|e| NetError::InvalidConfig {
            reason: format!("partition {p} outside the assignment: {e}"),
        })?;
        ranges.push((lo as u32, hi as u32));
    }
    Ok((ranges, compiled.coefficients_of(row).to_vec()))
}

/// Polls a nonblocking accept until a connection arrives or the accept
/// deadline (measured from `started`) passes.
fn accept_one(listener: &TcpListener, started: Instant) -> Result<TcpStream, NetError> {
    loop {
        match listener.accept() {
            Ok((stream, _)) => return Ok(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if started.elapsed() > ACCEPT_DEADLINE {
                    return Err(NetError::Handshake(
                        "timed out waiting for workers to connect".into(),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
}

/// An in-progress reply reassembly on one link.
struct PendingReply {
    seq: u64,
    worker: u32,
    buf: Vec<f64>,
    /// Contiguous prefix filled so far — enforced (and meaningful) only
    /// on encoded links, where chunks must arrive in offset order.
    filled: usize,
    /// Wire bytes of gradient payload accumulated for this reply.
    payload_bytes: u64,
}

/// Spawns the reader thread for one link: reassembles
/// [`Frame::GradientChunk`]s (or, on a lossy-negotiated link,
/// [`Frame::EncodedChunk`]s dequantized on arrival) into a gradient
/// buffer and forwards each [`Frame::RoundDone`] as a completed
/// [`Reply`]. Exits (marking the link dead) on EOF, transport error or
/// protocol violation — a chunk whose encoding contradicts the handshake
/// kills the link rather than risking a misinterpreted payload.
fn spawn_reader(
    mut conn: Connection,
    num_params: usize,
    encoding: PayloadEncoding,
    replies: Sender<Reply>,
    alive: Arc<AtomicBool>,
    frames_received: Arc<AtomicU64>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let codec = AnyWireCodec::for_encoding(encoding);
        let mut pending: Option<PendingReply> = None;
        // EOF, broken link or garbage ends the loop: the peer is gone.
        while let Ok(frame) = conn.recv() {
            frames_received.fetch_add(1, Ordering::Relaxed);
            match frame {
                Frame::GradientChunk {
                    seq,
                    worker,
                    offset,
                    total,
                    data,
                } => {
                    if encoding != PayloadEncoding::F64 {
                        break; // handshake said encoded traffic: violation
                    }
                    if total as usize != num_params {
                        continue; // wrong regime/corrupt: drop
                    }
                    let resumes = matches!(&pending, Some(p) if p.seq == seq && p.worker == worker);
                    if !resumes {
                        pending = Some(PendingReply {
                            seq,
                            worker,
                            buf: vec![0.0; num_params],
                            filled: 0,
                            payload_bytes: 0,
                        });
                    }
                    let p = pending.as_mut().expect("set above");
                    let offset = offset as usize;
                    if offset + data.len() <= p.buf.len() {
                        p.buf[offset..offset + data.len()].copy_from_slice(&data);
                        p.payload_bytes += 8 * data.len() as u64;
                    }
                }
                Frame::EncodedChunk {
                    seq,
                    worker,
                    offset,
                    total,
                    encoding: chunk_encoding,
                    bytes,
                } => {
                    // Only the negotiated encoding is ever dequantized;
                    // anything else is a protocol violation, not a
                    // fallback opportunity.
                    if encoding == PayloadEncoding::F64 || chunk_encoding != encoding {
                        break;
                    }
                    if total as usize != num_params {
                        continue; // wrong regime/corrupt: drop
                    }
                    let resumes = matches!(&pending, Some(p) if p.seq == seq && p.worker == worker);
                    if !resumes {
                        pending = Some(PendingReply {
                            seq,
                            worker,
                            buf: vec![0.0; num_params],
                            filled: 0,
                            payload_bytes: 0,
                        });
                    }
                    let p = pending.as_mut().expect("set above");
                    let Ok(n) = codec.decoded_len(&bytes) else {
                        break; // corrupt codec payload: kill the link
                    };
                    let offset = offset as usize;
                    // Encoded chunks must tile the gradient in order —
                    // the worker streams them that way, and contiguity
                    // is what lets RoundDone verify full coverage.
                    if offset != p.filled || offset + n > p.buf.len() {
                        break;
                    }
                    if codec
                        .decode_into(&bytes, &mut p.buf[offset..offset + n])
                        .is_err()
                    {
                        break;
                    }
                    p.filled += n;
                    p.payload_bytes += bytes.len() as u64;
                }
                Frame::RoundDone {
                    seq,
                    worker,
                    compute_seconds,
                    wire_error,
                } => {
                    let done = match pending.take() {
                        Some(p) if p.seq == seq && p.worker == worker => p,
                        other => {
                            pending = other; // chunks belong elsewhere: keep them
                            continue; // no payload for this round: drop the reply
                        }
                    };
                    if encoding != PayloadEncoding::F64 && done.filled != num_params {
                        break; // encoded reply with holes: violation
                    }
                    let reply = Reply {
                        worker: worker as usize,
                        seq,
                        coded: done.buf,
                        compute_seconds,
                        wire_error: wire_error.unwrap_or(0.0),
                        payload_bytes: done.payload_bytes,
                        arrived: Instant::now(),
                    };
                    if replies.send(reply).is_err() {
                        break; // master gone
                    }
                }
                Frame::Shutdown => break,
                _ => {} // masters ignore control frames meant for workers
            }
        }
        alive.store(false, Ordering::Relaxed);
    })
}
