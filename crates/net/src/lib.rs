//! `hetgc-net`: the real TCP data plane for heterogeneity-aware gradient
//! coding — the same master round loop the threaded runtime runs, over
//! sockets and worker *processes* instead of channels and threads.
//!
//! Layers, bottom up:
//!
//! * [`frame`] — the wire protocol: compact length-prefixed binary
//!   frames (handshake, per-round sequence-numbered coded-gradient
//!   chunks, recode/shutdown control). Pure bytes, no I/O.
//! * [`conn`] — blocking framed transport over `std::net::TcpStream`
//!   with persistent partial-frame buffering and shared byte counters.
//! * [`spec`] — wire-shippable mirrors of the runtime configuration
//!   (model, dataset, behaviour schedule, shard assignment) so a fresh
//!   worker process can rebuild its entire state from the handshake.
//! * [`worker`] / the `hetgc-worker` binary — the worker loop:
//!   newest-round fast-forward, the *identical* coded-gradient
//!   arithmetic as the in-process worker thread, chunked streaming
//!   replies.
//! * [`cluster`] — [`SocketCluster`]: the master. Dispatch/collect
//!   split, escalation deadlines, live re-coding onto surviving
//!   connections, real per-round byte metering.
//! * [`engine`] — [`SocketEngine`]: `RoundEngine` + `PipelinedEngine`,
//!   so `hetgc::TrainDriver` and `hetgc::PipelinedDriver` drive TCP
//!   workers with no call-site changes.
//! * [`spawn`] — [`WorkerFleet`]: process lifecycle for tests and fault
//!   drills (spawn n workers, kill one mid-run, reap on drop).
//!
//! Because worker compute is operation-for-operation the threaded
//! worker's, a socket run over loopback decodes to **bitwise** the same
//! gradient trajectory as a threaded run under a code whose decode is
//! arrival-order-independent — the loopback tests pin exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod conn;
pub mod engine;
pub mod error;
pub mod frame;
pub mod spawn;
pub mod spec;
pub mod worker;

pub use cluster::{
    export_link_metrics, LinkStats, SocketCluster, SocketListener, SocketRound, DEFAULT_CHUNK_LEN,
};
pub use conn::Connection;
pub use engine::SocketEngine;
pub use error::{NetError, WireError};
pub use frame::{Frame, MAX_FRAME_LEN, VERSION};
pub use hetgc_comm::PayloadEncoding;
pub use spawn::WorkerFleet;
pub use spec::{AnyModel, BehaviorSpec, DatasetSpec, Handshake, ModelSpec, TargetsSpec};
pub use worker::{run_worker, run_worker_with_metrics};
