//! [`SocketEngine`]: the socket cluster behind the same `RoundEngine` +
//! `PipelinedEngine` traits the threaded runtime implements, so
//! `hetgc::TrainDriver` and `hetgc::PipelinedDriver` run over real TCP
//! with **no call-site changes** — swap the engine, keep the loop.
//!
//! Two telemetry upgrades over the threaded engine fall out of the real
//! transport: each [`RoundSample`] carries the *measured* master-side
//! arrival time (the threaded engine can only approximate arrival by
//! compute end), and each round reports the real `bytes_sent` /
//! `bytes_received` moved over the wire.

use hetgc::{
    scheme_from_estimates, EngineRound, PipelinedEngine, RoundEngine, RoundSample, SchemeKind,
};
use hetgc_coding::GradientCodec;
use hetgc_ml::Model;
use hetgc_obs::Recorder;
use rand::RngCore;

use crate::cluster::{SocketCluster, SocketRound};
use crate::error::NetError;

/// The driver traits' error type (structurally `hetgc`'s `BoxError`,
/// which is not re-exported).
type BoxError = Box<dyn std::error::Error + Send + Sync>;

/// The TCP data plane as a driver engine. Construct a
/// [`SocketCluster`], wrap it, hand it to the driver.
#[derive(Debug)]
pub struct SocketEngine<M> {
    cluster: SocketCluster<M>,
    label: String,
    recode_spec: Option<(SchemeKind, usize)>,
    recodes: usize,
}

impl<M> SocketEngine<M>
where
    M: Model + Send + Sync + 'static,
{
    /// Wraps a started cluster (label `"socket"`).
    pub fn new(cluster: SocketCluster<M>) -> Self {
        SocketEngine {
            cluster,
            label: "socket".to_owned(),
            recode_spec: None,
            recodes: 0,
        }
    }

    /// Overrides the curve label (default `"socket"`).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Enables live re-coding: on [`RoundEngine::recode`] the engine
    /// rebuilds a `kind` scheme tolerating `stragglers` stragglers from
    /// the fresh estimates of the **surviving** workers and re-rows the
    /// live connections around it.
    pub fn with_recoding(mut self, kind: SchemeKind, stragglers: usize) -> Self {
        self.recode_spec = Some((kind, stragglers));
        self
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &SocketCluster<M> {
        &self.cluster
    }

    /// The underlying cluster, mutably — for pre-run observability
    /// wiring ([`SocketCluster::attach_codec_metrics`],
    /// [`SocketCluster::link_stats`], timeouts).
    pub fn cluster_mut(&mut self) -> &mut SocketCluster<M> {
        &mut self.cluster
    }

    /// How many times [`RoundEngine::recode`] installed a rebuilt code.
    pub fn recodes(&self) -> usize {
        self.recodes
    }

    /// Converts a completed [`SocketRound`] into the driver's
    /// [`EngineRound`] — shared by the sequential and pipelined paths.
    fn engine_round(&self, r: SocketRound) -> EngineRound {
        let k = self.cluster.partitions();
        let samples_per_partition = self.cluster.data().len() as f64 / k as f64;
        let elapsed = r.elapsed.as_secs_f64();
        let codec = self.cluster.codec();
        let samples = r
            .busy
            .iter()
            .enumerate()
            .map(|(w, &compute)| {
                let work = codec.load_of(w) as f64 * samples_per_partition;
                if compute > 0.0 {
                    // Real arrival: when the reply's final frame reached
                    // the master, offset from the dispatch — includes
                    // serialization and wire time, not just compute.
                    let arrival = if r.arrivals[w] > 0.0 {
                        r.arrivals[w]
                    } else {
                        compute
                    };
                    RoundSample::completed(w, work, compute, arrival)
                } else if r.late_busy.get(w).copied().unwrap_or(0.0) > 0.0 {
                    let late = r.late_busy[w];
                    RoundSample::completed(w, work, late, late).late()
                } else {
                    RoundSample::failed(w, work)
                }
            })
            .collect();
        EngineRound {
            elapsed: Some(elapsed),
            at: None,
            gradient: Some(r.gradient),
            residual: r.residual,
            error_bound: None,
            results_used: r.results_used,
            busy: r.busy,
            samples,
            alloc_bytes: r.alloc_bytes,
            pool_hits: r.pool_hits,
            bytes_sent: r.bytes_sent,
            bytes_received: r.bytes_received,
            wire_error: r.wire_error,
            bytes_saved: r.bytes_saved,
            stop: false,
        }
    }
}

impl<M> RoundEngine for SocketEngine<M>
where
    M: Model + Send + Sync + 'static,
{
    fn workers(&self) -> usize {
        self.cluster.workers()
    }

    fn partitions(&self) -> usize {
        self.cluster.partitions()
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn round(
        &mut self,
        round: usize,
        params: &[f64],
        _rng: &mut dyn RngCore,
    ) -> Result<EngineRound, BoxError> {
        let r = self.cluster.round(round, params)?;
        Ok(self.engine_round(r))
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        self.cluster.attach_recorder(recorder);
    }

    fn set_deadline(&mut self, deadline: f64) {
        // Same gating as the threaded engine: a deadline the escalation
        // ladder cannot act on would turn slow rounds into hard errors.
        if deadline.is_finite() && deadline > 0.0 && self.cluster.codec().can_escalate() {
            self.cluster
                .set_timeout(std::time::Duration::from_secs_f64(deadline));
        }
    }

    fn supports_recode(&self) -> bool {
        self.recode_spec.is_some()
    }

    fn recode(&mut self, estimates: &[f64], rng: &mut dyn RngCore) -> Result<bool, BoxError> {
        let Some((kind, stragglers)) = self.recode_spec else {
            return Ok(false);
        };
        // Rebuild around the survivors only: a dead link contributes no
        // estimate and gets no row. Fewer than two survivors cannot
        // carry a coded scheme — decline and keep limping.
        let live = self.cluster.live_rows();
        if live.len() < 2 {
            return Ok(false);
        }
        let survivors: Vec<f64> = live
            .iter()
            .filter_map(|&j| estimates.get(j).copied())
            .collect();
        if survivors.len() != live.len() {
            return Ok(false);
        }
        let Ok(scheme) = scheme_from_estimates(kind, &survivors, stragglers, None, rng) else {
            return Ok(false); // infeasible estimates: keep the old code
        };
        match self.cluster.recode(scheme.code) {
            Ok(()) => {
                self.recodes += 1;
                Ok(true)
            }
            // An unbuildable rebuild declines (the old regime keeps
            // running); only infrastructure failures abort the run.
            Err(NetError::InvalidConfig { .. }) => Ok(false),
            Err(e) => Err(e.into()),
        }
    }
}

impl<M> PipelinedEngine for SocketEngine<M>
where
    M: Model + Send + Sync + 'static,
{
    fn dispatch(&mut self, _round: usize, params: &[f64]) -> Result<(), BoxError> {
        self.cluster.dispatch(params).map_err(Into::into)
    }

    fn collect(&mut self, round: usize) -> Result<EngineRound, BoxError> {
        let r = self.cluster.collect(round)?;
        Ok(self.engine_round(r))
    }
}
