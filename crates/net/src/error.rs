//! Error taxonomy of the TCP data plane.
//!
//! Two layers: [`WireError`] is the pure protocol layer (a malformed byte
//! sequence — no I/O involved), [`NetError`] wraps it together with
//! transport failures and the master-side round outcomes that mirror
//! `hetgc_runtime::RuntimeError`'s contract (`Undecodable`,
//! `WorkerLost`), so `SocketCluster` rounds surface exactly the error
//! shapes `ThreadedCluster` rounds do.

use std::error::Error;
use std::fmt;
use std::io;

/// A malformed frame. Decoding never panics and never allocates more
/// than the declared (and bounded) frame length — every bad input maps
/// to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the declared frame does.
    Truncated,
    /// The frame header declares a length above
    /// [`crate::frame::MAX_FRAME_LEN`]; rejected *before* any allocation.
    Oversized {
        /// The declared payload length.
        declared: u64,
    },
    /// A `Hello` carried the wrong protocol magic (not a hetgc peer).
    BadMagic {
        /// The magic actually received.
        got: u32,
    },
    /// The frame tag byte names no known frame type.
    UnknownTag {
        /// The offending tag.
        tag: u8,
    },
    /// The payload contradicts itself (inner length prefixes overrun the
    /// frame, trailing garbage, an impossible enum discriminant, …).
    Corrupt {
        /// What was being decoded when the contradiction surfaced.
        what: &'static str,
    },
    /// A handshake or gradient chunk named a payload encoding this
    /// build does not implement. Always a typed rejection — a peer is
    /// never silently fed a misinterpreted payload.
    UnknownEncoding {
        /// The offending encoding byte.
        value: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversized { declared } => {
                write!(f, "declared frame length {declared} exceeds the cap")
            }
            WireError::BadMagic { got } => write!(f, "bad protocol magic {got:#010x}"),
            WireError::UnknownTag { tag } => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::Corrupt { what } => write!(f, "corrupt frame payload: {what}"),
            WireError::UnknownEncoding { value } => {
                write!(f, "unsupported payload encoding {value:#04x}")
            }
        }
    }
}

impl Error for WireError {}

/// Errors of the socket master, worker loop, and transport.
#[derive(Debug)]
pub enum NetError {
    /// A peer sent a malformed frame.
    Wire(WireError),
    /// The underlying socket failed.
    Io(io::Error),
    /// A blocking receive hit its deadline without a complete frame.
    Timeout,
    /// The peer closed the connection.
    Closed,
    /// The handshake phase failed (wrong first frame, accept timeout, …).
    Handshake(String),
    /// Configuration inconsistent with the coding matrix, dataset or
    /// cluster membership — mirrors `RuntimeError::InvalidConfig`.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// A round could not be decoded within the deadline and the
    /// escalation ladder declined — mirrors `RuntimeError::Undecodable`.
    Undecodable {
        /// The 1-based round that failed.
        iteration: usize,
        /// How many results arrived before the master gave up.
        received: usize,
    },
    /// Every worker connection is gone.
    WorkerLost {
        /// A worker whose connection closed (the first observed).
        worker: usize,
    },
    /// The coding layer failed (propagated message).
    Coding {
        /// Underlying message.
        message: String,
    },
    /// The wire codec (quantize/dequantize) failed on a payload.
    Payload(hetgc_comm::CommError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "wire protocol error: {e}"),
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Timeout => write!(f, "receive deadline passed"),
            NetError::Closed => write!(f, "connection closed by peer"),
            NetError::Handshake(reason) => write!(f, "handshake failed: {reason}"),
            NetError::InvalidConfig { reason } => write!(f, "invalid net config: {reason}"),
            NetError::Undecodable {
                iteration,
                received,
            } => write!(
                f,
                "round {iteration} undecodable after {received} results (too many stragglers)"
            ),
            NetError::WorkerLost { worker } => write!(f, "worker {worker} connection lost"),
            NetError::Coding { message } => write!(f, "coding failure: {message}"),
            NetError::Payload(e) => write!(f, "wire codec failure: {e}"),
        }
    }
}

impl NetError {
    /// Whether this error means the peer is simply gone (as opposed to a
    /// protocol violation or a local failure).
    pub fn is_disconnect(&self) -> bool {
        matches!(self, NetError::Closed | NetError::Io(_))
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<hetgc_comm::CommError> for NetError {
    fn from(e: hetgc_comm::CommError) -> Self {
        NetError::Payload(e)
    }
}

impl From<hetgc_coding::CodingError> for NetError {
    fn from(e: hetgc_coding::CodingError) -> Self {
        NetError::Coding {
            message: e.to_string(),
        }
    }
}

impl From<hetgc_runtime::RuntimeError> for NetError {
    fn from(e: hetgc_runtime::RuntimeError) -> Self {
        match e {
            hetgc_runtime::RuntimeError::InvalidConfig { reason } => {
                NetError::InvalidConfig { reason }
            }
            hetgc_runtime::RuntimeError::Undecodable {
                iteration,
                received,
            } => NetError::Undecodable {
                iteration,
                received,
            },
            hetgc_runtime::RuntimeError::WorkerLost { worker } => NetError::WorkerLost { worker },
            hetgc_runtime::RuntimeError::Coding { message } => NetError::Coding { message },
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Wire(e) => Some(e),
            NetError::Io(e) => Some(e),
            NetError::Payload(e) => Some(e),
            _ => None,
        }
    }
}
