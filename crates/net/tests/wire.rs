//! Wire-protocol properties: every frame type round-trips bitwise, and
//! every malformed byte sequence — truncated, corrupt, oversized,
//! unknown-tag, wrong-magic — maps to a typed [`WireError`] without
//! panicking and without allocating beyond the (bounded) declared length.

use hetgc_net::frame::HEADER_LEN;
use hetgc_net::{
    BehaviorSpec, DatasetSpec, Frame, Handshake, ModelSpec, PayloadEncoding, TargetsSpec,
    WireError, MAX_FRAME_LEN, VERSION,
};
use proptest::prelude::*;

/// Strategy: finite `f64`s (frame equality is `PartialEq`, which NaN
/// would break spuriously).
fn finite() -> impl Strategy<Value = f64> {
    -1e12f64..1e12
}

fn f64s(max: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(finite(), 0..max)
}

fn ranges(max: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..10_000, 0u32..10_000), 0..max)
}

/// Strategy: an arbitrary (syntactically valid) handshake, covering every
/// optional-field presence combination and both target layouts.
fn handshake() -> impl Strategy<Value = Handshake> {
    (
        (0u32..64, 1u32..512, 1u32..4096),
        ranges(6),
        f64s(6),
        (any::<u64>(), any::<bool>(), finite(), any::<bool>()),
        (f64s(24), 1u32..8, any::<bool>()),
        0u8..4,
    )
        .prop_map(
            |(
                (worker, num_params, chunk_len),
                ranges,
                coefficients,
                behavior,
                dataset,
                encoding,
            )| {
                let (delay, has_throttle, rate, fail) = behavior;
                let (x, dim, classes) = dataset;
                let targets = if classes {
                    TargetsSpec::Classes {
                        labels: vec![0, 2, 1],
                        num_classes: 3,
                    }
                } else {
                    TargetsSpec::Regression(vec![1.5, -0.25])
                };
                Handshake {
                    worker,
                    num_params,
                    chunk_len,
                    ranges,
                    coefficients,
                    behavior: BehaviorSpec {
                        extra_delay_micros: delay,
                        throttle: has_throttle.then_some(rate),
                        throttle_step: has_throttle.then_some((delay % (1 << 20), rate)),
                        fail_from: fail.then_some(delay % 1000),
                    },
                    model: if classes {
                        ModelSpec::Softmax { dim, classes: 3 }
                    } else {
                        ModelSpec::Linear { dim: num_params }
                    },
                    dataset: DatasetSpec { x, targets, dim },
                    encoding: PayloadEncoding::from_byte(encoding).expect("0..4 are all known"),
                }
            },
        )
}

/// One strategy producing every frame variant.
fn frame() -> impl Strategy<Value = Frame> {
    (
        0usize..8,
        (any::<u64>(), 0u32..64, 0u32..1024, 1u32..2048),
        f64s(32),
        ranges(6),
        (finite(), any::<bool>(), 0u8..4),
        handshake(),
    )
        .prop_map(|(which, ints, data, rs, (x, some, enc), h)| {
            let (seq, worker, offset, total) = ints;
            match which {
                0 => Frame::Hello {
                    version: VERSION,
                    // Capability sets are arbitrary bytes on the wire —
                    // including empty (a pre-compression peer) and bytes
                    // this build does not know.
                    encodings: data.iter().map(|&v| v.to_bits() as u8).take(4).collect(),
                },
                1 => Frame::Shutdown,
                2 => Frame::Round { seq, params: data },
                3 => Frame::GradientChunk {
                    seq,
                    worker,
                    offset,
                    total,
                    data,
                },
                4 => Frame::RoundDone {
                    seq,
                    worker,
                    compute_seconds: x,
                    wire_error: some.then_some(x.abs()),
                },
                5 => Frame::Recode {
                    row: worker,
                    ranges: rs,
                    coefficients: data,
                },
                6 => Frame::EncodedChunk {
                    seq,
                    worker,
                    offset,
                    total,
                    encoding: PayloadEncoding::from_byte(enc).expect("0..4 are all known"),
                    bytes: data.iter().map(|&v| v.to_bits() as u8).collect(),
                },
                _ => Frame::Handshake(h),
            }
        })
}

/// Strategy: arbitrary bytes (the shim has no `u8` Arbitrary).
fn bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u32..256, 0..max).prop_map(|v| v.into_iter().map(|x| x as u8).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every frame type round-trips bitwise through encode → decode.
    #[test]
    fn frames_round_trip(f in frame()) {
        let encoded = f.encode();
        let back = Frame::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(&back, &f);
        // Streaming decode agrees and consumes exactly the frame.
        let (back, consumed) = Frame::decode_prefix(&encoded)
            .expect("no wire error")
            .expect("complete frame");
        prop_assert_eq!(&back, &f);
        prop_assert_eq!(consumed, encoded.len());
    }

    /// Bytes of the NEXT frame never confuse a prefix decode.
    #[test]
    fn prefix_decode_ignores_following_bytes(f in frame(), extra in bytes(32)) {
        let mut encoded = f.encode();
        let frame_len = encoded.len();
        encoded.extend_from_slice(&extra);
        let (back, consumed) = Frame::decode_prefix(&encoded)
            .expect("no wire error")
            .expect("complete frame");
        prop_assert_eq!(back, f);
        prop_assert_eq!(consumed, frame_len);
    }

    /// Every strict prefix of a valid frame is `Truncated` (strict
    /// decode) / `Ok(None)` (streaming decode) — never a panic, never a
    /// wrong frame.
    #[test]
    fn truncation_is_typed(f in frame(), cut in any::<usize>()) {
        let encoded = f.encode();
        let cut = cut % encoded.len();
        let prefix = &encoded[..cut];
        prop_assert_eq!(Frame::decode(prefix).unwrap_err(), WireError::Truncated);
        prop_assert!(
            Frame::decode_prefix(prefix).expect("truncation is not a stream error").is_none()
        );
    }

    /// Arbitrary garbage never panics: it decodes, truncates, or fails
    /// with a typed error.
    #[test]
    fn garbage_never_panics(raw in bytes(64)) {
        let _ = Frame::decode(&raw);
        let _ = Frame::decode_prefix(&raw);
    }

    /// A corrupt inner element count (pointing past the payload) is
    /// `Corrupt`, and the decoder never allocates the declared amount —
    /// the count is validated against the remaining payload bytes first.
    #[test]
    fn corrupt_counts_are_typed(seq in any::<u64>(), count in 16u32..u32::MAX) {
        // Hand-build a Round frame whose params count overruns the payload.
        let mut raw = Vec::new();
        let payload_len = 8 + 4; // seq + count, no elements
        raw.extend_from_slice(&(payload_len as u32).to_le_bytes());
        raw.push(0x03); // TAG_ROUND
        raw.extend_from_slice(&seq.to_le_bytes());
        raw.extend_from_slice(&count.to_le_bytes());
        prop_assert!(
            matches!(Frame::decode(&raw), Err(WireError::Corrupt { .. })),
            "a count past the payload must be Corrupt"
        );
    }
}

#[test]
fn oversized_header_is_rejected_before_allocation() {
    // A header declaring more than the cap fails immediately — even
    // though only the 5 header bytes exist, and even under the streaming
    // decode (waiting for more bytes could never make it valid).
    let mut raw = Vec::new();
    raw.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    raw.push(0x03);
    assert_eq!(
        Frame::decode(&raw).unwrap_err(),
        WireError::Oversized {
            declared: u64::from(MAX_FRAME_LEN) + 1
        }
    );
    assert!(Frame::decode_prefix(&raw).is_err());
}

#[test]
fn unknown_tag_is_typed() {
    let mut raw = Vec::new();
    raw.extend_from_slice(&0u32.to_le_bytes());
    raw.push(0x7f);
    assert_eq!(
        Frame::decode(&raw).unwrap_err(),
        WireError::UnknownTag { tag: 0x7f }
    );
}

#[test]
fn wrong_magic_is_typed() {
    // A Hello carrying the wrong magic is a foreign peer, not a version
    // mismatch.
    let mut raw = Frame::Hello {
        version: VERSION,
        encodings: Vec::new(),
    }
    .encode();
    raw[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&0xdead_beefu32.to_le_bytes());
    assert_eq!(
        Frame::decode(&raw).unwrap_err(),
        WireError::BadMagic { got: 0xdead_beef }
    );
}

#[test]
fn trailing_payload_bytes_are_corrupt() {
    // A Shutdown frame declaring a 1-byte payload: the payload is not
    // consumed by the (empty) frame body → Corrupt.
    let raw = [1u32.to_le_bytes().as_slice(), &[0x07, 0x00]].concat();
    assert!(matches!(
        Frame::decode(&raw),
        Err(WireError::Corrupt { .. })
    ));
}

#[test]
fn default_extension_fields_stay_byte_identical() {
    // The PR-10 extension fields (Hello capabilities, Handshake
    // encoding, RoundDone wire_error) are only written when non-default,
    // so default frames keep the exact pre-compression layout: an
    // empty-capability Hello is magic(4) + version(2), nothing more.
    let hello = Frame::Hello {
        version: VERSION,
        encodings: Vec::new(),
    }
    .encode();
    assert_eq!(hello.len(), HEADER_LEN + 4 + 2);
    // And a lossless RoundDone is seq(8) + worker(4) + compute(8).
    let done = Frame::RoundDone {
        seq: 7,
        worker: 3,
        compute_seconds: 0.25,
        wire_error: None,
    }
    .encode();
    assert_eq!(done.len(), HEADER_LEN + 8 + 4 + 8);
}

#[test]
fn unknown_handshake_encoding_is_typed() {
    let h = Handshake {
        worker: 0,
        num_params: 4,
        chunk_len: 2,
        ranges: vec![(0, 4)],
        coefficients: vec![1.0],
        behavior: BehaviorSpec {
            extra_delay_micros: 0,
            throttle: None,
            throttle_step: None,
            fail_from: None,
        },
        model: ModelSpec::Linear { dim: 4 },
        dataset: DatasetSpec {
            x: vec![],
            targets: TargetsSpec::Regression(vec![]),
            dim: 1,
        },
        encoding: PayloadEncoding::Int8,
    };
    // A non-default encoding rides as the final payload byte; a value
    // this build does not implement must be a typed rejection, never a
    // silent f64 fallback.
    let mut raw = Frame::Handshake(h).encode();
    assert_eq!(*raw.last().unwrap(), PayloadEncoding::Int8.to_byte());
    *raw.last_mut().unwrap() = 0x09;
    assert_eq!(
        Frame::decode(&raw).unwrap_err(),
        WireError::UnknownEncoding { value: 0x09 }
    );
}

#[test]
fn unknown_chunk_encoding_is_typed() {
    let mut raw = Frame::EncodedChunk {
        seq: 1,
        worker: 0,
        offset: 0,
        total: 4,
        encoding: PayloadEncoding::Bf16,
        bytes: vec![0xAA, 0xBB],
    }
    .encode();
    // Payload layout: seq(8) worker(4) offset(4) total(4) encoding(1).
    let idx = HEADER_LEN + 8 + 4 + 4 + 4;
    assert_eq!(raw[idx], PayloadEncoding::Bf16.to_byte());
    raw[idx] = 0x7f;
    assert_eq!(
        Frame::decode(&raw).unwrap_err(),
        WireError::UnknownEncoding { value: 0x7f }
    );
}

#[test]
fn presence_byte_other_than_01_is_corrupt() {
    // Corrupt a Handshake's throttle presence byte (2 is not a valid
    // option encoding).
    let h = Handshake {
        worker: 0,
        num_params: 4,
        chunk_len: 2,
        ranges: vec![(0, 4)],
        coefficients: vec![1.0],
        behavior: BehaviorSpec {
            extra_delay_micros: 0,
            throttle: None,
            throttle_step: None,
            fail_from: None,
        },
        model: ModelSpec::Linear { dim: 4 },
        dataset: DatasetSpec {
            x: vec![],
            targets: TargetsSpec::Regression(vec![]),
            dim: 1,
        },
        encoding: PayloadEncoding::F64,
    };
    let mut raw = Frame::Handshake(h).encode();
    // Payload layout: worker(4) num_params(4) chunk_len(4) ranges(4+8)
    // coefficients(4+8) delay(8) [throttle presence byte].
    let idx = HEADER_LEN + 4 + 4 + 4 + (4 + 8) + (4 + 8) + 8;
    assert_eq!(raw[idx], 0, "expected the throttle presence byte");
    raw[idx] = 2;
    assert!(matches!(
        Frame::decode(&raw),
        Err(WireError::Corrupt { .. })
    ));
}
