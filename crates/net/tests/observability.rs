//! End-to-end observability: a real socket-cluster training run with the
//! full `hetgc-obs` stack attached — per-job round counters and
//! per-worker arrival histograms from the driver's [`RunObserver`],
//! shared-plan-cache and per-link gauges published through a scrape
//! refresh hook, and the flight recorder's Chrome trace — all read back
//! over live HTTP from a `MetricsServer`, including a scrape taken
//! *mid-run* (between two halves of the training, with the cluster and
//! worker processes still up).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hetgc::{naive, synthetic, LinearRegression, RuntimeConfig, Sgd, TrainDriver};
use hetgc_coding::SharedPlanCache;
use hetgc_net::{
    export_link_metrics, LinkStats, ModelSpec, SocketEngine, SocketListener, WorkerFleet,
};
use hetgc_net::{NetError, SocketCluster};
use hetgc_obs::{
    expo, CodecMetrics, MetricValue, MetricsRegistry, MetricsServer, Phase, Recorder, RunObserver,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 5;
const SAMPLES: usize = 96;
const WORKERS: usize = 4;
const JOB: &str = "obs-e2e";
const HALF_ROUNDS: usize = 5;

/// One blocking HTTP GET against the exposition endpoint; returns the
/// response body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(head.starts_with("HTTP/1.0 200"), "non-200 response: {head}");
    body.to_string()
}

fn counter(snap: &hetgc_obs::MetricsSnapshot, name: &str, labels: &[(&str, &str)]) -> u64 {
    match snap.get(name, labels) {
        Some(MetricValue::Counter(v)) => *v,
        other => panic!("{name}{labels:?}: expected a counter, got {other:?}"),
    }
}

fn gauge(snap: &hetgc_obs::MetricsSnapshot, name: &str, labels: &[(&str, &str)]) -> f64 {
    match snap.get(name, labels) {
        Some(MetricValue::Gauge(v)) => *v,
        other => panic!("{name}{labels:?}: expected a gauge, got {other:?}"),
    }
}

fn histogram_count(snap: &hetgc_obs::MetricsSnapshot, name: &str, labels: &[(&str, &str)]) -> u64 {
    match snap.get(name, labels) {
        Some(MetricValue::Histogram(h)) => h.count,
        other => panic!("{name}{labels:?}: expected a histogram, got {other:?}"),
    }
}

fn start_cluster(
    model: &Arc<LinearRegression>,
    data: &Arc<hetgc::Dataset>,
    config: &RuntimeConfig,
) -> Result<(SocketEngine<LinearRegression>, WorkerFleet), NetError> {
    let listener = SocketListener::bind()?;
    let addr = listener.addr().to_string();
    let fleet = WorkerFleet::spawn(env!("CARGO_BIN_EXE_hetgc-worker"), &addr, WORKERS)?;
    let cluster = SocketCluster::start(
        listener,
        naive(WORKERS).expect("naive code"),
        Arc::clone(model),
        ModelSpec::Linear { dim: DIM as u32 },
        Arc::clone(data),
        config,
    )?;
    Ok((SocketEngine::new(cluster), fleet))
}

#[test]
fn socket_training_exposes_live_metrics_and_trace() {
    let mut rng = StdRng::seed_from_u64(11);
    let model = Arc::new(LinearRegression::new(DIM));
    let data = Arc::new(synthetic::linear_regression(SAMPLES, DIM, 0.05, &mut rng));
    let cache = Arc::new(SharedPlanCache::new());
    let config = RuntimeConfig {
        shared_plans: Some(Arc::clone(&cache)),
        ..RuntimeConfig::nominal(WORKERS)
    };
    let (mut engine, _fleet) = start_cluster(&model, &data, &config).expect("cluster up");

    // The full observability stack: registry + flight recorder, codec
    // metric handles on the decode path, and a refresh hook that
    // publishes the pull-model sources (shared cache, per-link traffic)
    // at scrape time.
    let registry = MetricsRegistry::new();
    let recorder = Recorder::new(4096);
    engine.cluster_mut().attach_codec_metrics(
        CodecMetrics::new(&registry, "socket").with_recorder(recorder.clone()),
    );
    let links: Vec<LinkStats> = engine.cluster().link_stats();
    assert_eq!(links.len(), WORKERS);
    let refresh = {
        let registry = registry.clone();
        let cache = Arc::clone(&cache);
        let links = links.clone();
        move || {
            cache.export_metrics(&registry);
            export_link_metrics(&registry, &links);
        }
    };
    let server = MetricsServer::start_with(
        "127.0.0.1:0",
        registry.clone(),
        Some(recorder.clone()),
        Some(Box::new(refresh)),
    )
    .expect("metrics endpoint up");
    let observer = RunObserver::new(&registry, JOB, WORKERS).with_recorder(recorder.clone());

    // First half of the training run.
    let mut rng = StdRng::seed_from_u64(3);
    TrainDriver::new(model.as_ref(), data.as_ref(), Sgd::new(0.1))
        .with_observer(observer.clone())
        .run(&mut engine, HALF_ROUNDS, &mut rng)
        .expect("first half");

    // Mid-run scrape: cluster and worker processes still live, a second
    // half still to come. The counters must reflect exactly the rounds
    // completed so far.
    let mid = expo::parse(&http_get(server.addr(), "/metrics")).expect("mid-run scrape parses");
    let job = [("job", JOB)];
    assert_eq!(
        counter(&mid, "hetgc_rounds_total", &job),
        HALF_ROUNDS as u64
    );
    assert_eq!(
        histogram_count(&mid, "hetgc_round_seconds", &job),
        HALF_ROUNDS as u64
    );
    for w in 0..WORKERS {
        let worker = w.to_string();
        // naive(m) needs every worker each round, so each arrival
        // histogram saw every completed round.
        assert_eq!(
            histogram_count(
                &mid,
                "hetgc_arrival_seconds",
                &[("job", JOB), ("worker", &worker)],
            ),
            HALF_ROUNDS as u64,
            "worker {w} arrival histogram not live"
        );
    }
    assert!(counter(&mid, "hetgc_bytes_sent_total", &job) > 0);
    assert!(counter(&mid, "hetgc_bytes_received_total", &job) > 0);

    // Second half over the same cluster, same observer handles.
    TrainDriver::new(model.as_ref(), data.as_ref(), Sgd::new(0.1))
        .with_observer(observer)
        .run(&mut engine, HALF_ROUNDS, &mut rng)
        .expect("second half");

    let total_rounds = 2 * HALF_ROUNDS as u64;
    let body = http_get(server.addr(), "/metrics");
    let snap = expo::parse(&body).expect("final scrape parses");
    assert_eq!(counter(&snap, "hetgc_rounds_total", &job), total_rounds);
    assert_eq!(counter(&snap, "hetgc_failed_rounds_total", &job), 0);

    // Shared-cache gauges published by the refresh hook must agree with
    // what the SharedPlanCache itself reports (nothing is running, so
    // the two reads see the same state). With one scheme and one
    // survivor pattern, at most one dense solve happened.
    assert_eq!(
        gauge(&snap, "hetgc_shared_cache_hits", &[]),
        cache.hits() as f64
    );
    assert_eq!(
        gauge(&snap, "hetgc_shared_cache_misses", &[]),
        cache.misses() as f64
    );
    assert_eq!(
        gauge(&snap, "hetgc_shared_cache_solves", &[]),
        cache.solves() as f64
    );
    assert_eq!(cache.hits() + cache.misses(), cache.lookups());
    assert!(cache.solves() <= 1, "one pattern, at most one solve");

    // Per-link byte/frame counters: every physical link moved real
    // traffic both ways, and the gauges equal the live handles.
    for (i, link) in links.iter().enumerate() {
        let label = i.to_string();
        let sent = gauge(&snap, "hetgc_link_sent_bytes", &[("link", &label)]);
        let received = gauge(&snap, "hetgc_link_received_bytes", &[("link", &label)]);
        assert!(sent > 0.0, "link {i} sent nothing");
        assert!(received > 0.0, "link {i} received nothing");
        assert_eq!(sent, link.sent_bytes() as f64);
        assert_eq!(received, link.received_bytes() as f64);
        assert!(
            link.frames_sent() >= total_rounds,
            "link {i} sent {} frames over {total_rounds} rounds",
            link.frames_sent()
        );
        assert!(link.frames_received() >= total_rounds);
    }
    // Aggregate == sum of links, on the cluster's own accessors.
    let sent_sum: u64 = links.iter().map(LinkStats::sent_bytes).sum();
    assert_eq!(engine.cluster().bytes_sent(), sent_sum);

    // The flight recorder saw the whole cross-layer round anatomy:
    // dispatch/collect/decode from the cluster, per-worker arrival
    // instants, and the driver's step span.
    let trace = http_get(server.addr(), "/trace");
    let distinct: Vec<&str> = Phase::all()
        .iter()
        .map(|p| p.name())
        .filter(|name| trace.contains(&format!("\"name\":\"{name}\"")))
        .collect();
    assert!(
        distinct.len() >= 5,
        "expected ≥5 distinct phases in the trace, saw {distinct:?}"
    );
    for phase in ["dispatch", "collect", "decode", "arrival", "step"] {
        assert!(
            distinct.contains(&phase),
            "phase {phase} missing from trace (saw {distinct:?})"
        );
    }

    server.stop();
}

#[test]
fn worker_process_serves_its_own_metrics_endpoint() {
    // A worker given --metrics-addr exposes its own endpoint; after a
    // few rounds it reports the rounds it computed.
    let mut rng = StdRng::seed_from_u64(5);
    let model = Arc::new(LinearRegression::new(DIM));
    let data = Arc::new(synthetic::linear_regression(SAMPLES, DIM, 0.05, &mut rng));
    let config = RuntimeConfig::nominal(WORKERS);

    let listener = SocketListener::bind().expect("bind master");
    let master_addr = listener.addr().to_string();
    // Reserve a port for the worker's endpoint, then release it.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let worker_metrics_addr = probe.local_addr().expect("probe addr").to_string();
    drop(probe);

    let mut fleet = WorkerFleet::spawn(
        env!("CARGO_BIN_EXE_hetgc-worker"),
        &master_addr,
        WORKERS - 1,
    )
    .expect("plain workers");
    fleet
        .spawn_with_args(&[&master_addr, "--metrics-addr", &worker_metrics_addr])
        .expect("observed worker");

    let cluster = SocketCluster::start(
        listener,
        naive(WORKERS).expect("naive code"),
        Arc::clone(&model),
        ModelSpec::Linear { dim: DIM as u32 },
        Arc::clone(&data),
        &config,
    )
    .expect("cluster up");
    let mut engine = SocketEngine::new(cluster);
    let mut rng = StdRng::seed_from_u64(3);
    TrainDriver::new(model.as_ref(), data.as_ref(), Sgd::new(0.1))
        .run(&mut engine, 4, &mut rng)
        .expect("train");

    // The worker's endpoint may take a moment to come up; poll briefly.
    let addr: std::net::SocketAddr = worker_metrics_addr.parse().expect("addr parses");
    let mut body = String::new();
    for _ in 0..100 {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            if stream
                .write_all(b"GET /metrics HTTP/1.0\r\nHost: t\r\n\r\n")
                .is_ok()
            {
                let mut response = String::new();
                if stream.read_to_string(&mut response).is_ok() {
                    if let Some((_, b)) = response.split_once("\r\n\r\n") {
                        body = b.to_string();
                        if body.contains("hetgc_worker_rounds_total") {
                            break;
                        }
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let snap = expo::parse(&body).expect("worker scrape parses");
    let rounds: u64 = (0..WORKERS as u32)
        .map(|w| {
            let label = w.to_string();
            match snap.get("hetgc_worker_rounds_total", &[("worker", &label)]) {
                Some(MetricValue::Counter(v)) => *v,
                _ => 0,
            }
        })
        .sum();
    assert_eq!(rounds, 4, "observed worker served all four rounds");
}
