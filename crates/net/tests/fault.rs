//! Fault injection: real worker *processes* are killed mid-run and the
//! master must keep training — first by straggler tolerance (one death
//! within the code's budget), then by escalation (two deaths beyond it),
//! and finally by re-coding the surviving links into a fresh scheme.

use std::sync::Arc;
use std::time::Duration;

use hetgc::{
    heter_aware, synthetic, CodecBackend, EscalationPolicy, LinearRegression, RoundEngine,
    RuntimeConfig, SchemeKind,
};
use hetgc_net::{ModelSpec, SocketCluster, SocketEngine, SocketListener, WorkerFleet};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 4;
const SAMPLES: usize = 120;
const WORKERS: usize = 5;
/// The scheme's straggler budget: one death is absorbed exactly.
const BUDGET: usize = 1;
/// Escalation deadline — also the collect timeout once workers die.
const DEADLINE: Duration = Duration::from_millis(400);

fn engine() -> (SocketEngine<LinearRegression>, WorkerFleet) {
    let mut rng = StdRng::seed_from_u64(21);
    let data = Arc::new(synthetic::linear_regression(SAMPLES, DIM, 0.05, &mut rng));
    let model = Arc::new(LinearRegression::new(DIM));
    let code = heter_aware(&[1.0; WORKERS], WORKERS, BUDGET, &mut rng).expect("scheme");
    // A generous residual budget: which rows die is accept-order random,
    // and some survivor triples decode with a residual above the approx
    // arm's default cap — the test is about completion, not accuracy.
    let config = RuntimeConfig::nominal(WORKERS)
        .with_backend(CodecBackend::Exact)
        .with_escalation(
            EscalationPolicy::escalate_to(CodecBackend::Approx)
                .with_deadline(DEADLINE)
                .with_max_residual(100.0),
        );

    let listener = SocketListener::bind().expect("bind loopback");
    let addr = listener.addr().to_string();
    let fleet = WorkerFleet::spawn(env!("CARGO_BIN_EXE_hetgc-worker"), &addr, WORKERS)
        .expect("spawn workers");
    let cluster = SocketCluster::start(
        listener,
        code,
        Arc::clone(&model),
        ModelSpec::Linear { dim: DIM as u32 },
        Arc::clone(&data),
        &config,
    )
    .expect("socket cluster start");
    (
        SocketEngine::new(cluster).with_recoding(SchemeKind::HeterAware, BUDGET),
        fleet,
    )
}

/// Kill a worker and give its reader thread a moment to observe the EOF
/// so the next dispatch already routes around the dead link.
fn kill_and_settle(fleet: &mut WorkerFleet, worker: usize) {
    fleet.kill(worker);
    std::thread::sleep(Duration::from_millis(50));
}

#[test]
fn killed_workers_degrade_then_recode_rebuilds_around_survivors() {
    let (mut engine, mut fleet) = engine();
    let params = vec![0.0; DIM + 1];
    let mut rng = StdRng::seed_from_u64(5);

    // Round 1, all five alive: exact decode. The round legitimately
    // completes as soon as any m−s replies arrive, so the slowest
    // healthy worker may go unused — but never more than the budget.
    let clean = engine.round(1, &params, &mut rng).expect("clean round");
    assert_eq!(clean.residual, 0.0);
    assert!(clean.results_used >= WORKERS - BUDGET);
    assert!(clean.samples.iter().filter(|s| s.failed).count() <= BUDGET);

    // One death is within the budget: rounds still decode exactly from
    // the four survivors. The first post-kill round may also absorb the
    // corpse's stale round-1 reply (reported as a late arrival), so the
    // failed-flag assertion waits one settling round.
    kill_and_settle(&mut fleet, 4);
    let tolerated = engine.round(2, &params, &mut rng).expect("tolerated round");
    assert_eq!(tolerated.residual, 0.0, "one death is within the budget");
    let tolerated = engine.round(3, &params, &mut rng).expect("settled round");
    assert_eq!(tolerated.residual, 0.0);
    assert_eq!(tolerated.results_used, WORKERS - 1);
    // Fleet index ≠ logical row (rows are assigned in accept order), so
    // the corpse is identified by telemetry, not by index.
    let dead: Vec<usize> = tolerated
        .samples
        .iter()
        .filter(|s| s.failed)
        .map(|s| s.worker)
        .collect();
    assert_eq!(dead.len(), 1, "exactly the killed worker is flagged");

    // A second death exceeds the budget: exact decode is impossible, the
    // escalation deadline fires, and the Approx ladder completes the
    // round from three survivors with a nonzero residual.
    kill_and_settle(&mut fleet, 3);
    let degraded = engine.round(4, &params, &mut rng).expect("escalated round");
    assert!(
        degraded.residual > 0.0,
        "two deaths must force an approximate decode"
    );
    let degraded = engine.round(5, &params, &mut rng).expect("settled round");
    assert!(degraded.residual > 0.0);
    assert!(degraded.results_used <= WORKERS - 2);
    let dead_now: Vec<usize> = degraded
        .samples
        .iter()
        .filter(|s| s.failed)
        .map(|s| s.worker)
        .collect();
    assert_eq!(dead_now.len(), 2, "both corpses flagged: {dead_now:?}");
    assert!(
        dead_now.contains(&dead[0]),
        "the first corpse stays flagged"
    );

    // Re-code around the survivors: the cluster shrinks to the three
    // live links and the fresh scheme decodes exactly again.
    assert!(engine.supports_recode());
    let estimates = vec![1.0; WORKERS];
    let installed = engine.recode(&estimates, &mut rng).expect("recode");
    assert!(installed, "recode must install over the surviving links");
    assert_eq!(engine.recodes(), 1);
    assert_eq!(engine.workers(), WORKERS - 2);

    let rebuilt = engine.round(6, &params, &mut rng).expect("rebuilt round");
    assert_eq!(
        rebuilt.residual, 0.0,
        "the rebuilt scheme decodes exactly on the survivors"
    );
    // Like the clean round, at most the budget goes unused — no survivor
    // is systematically dead.
    assert!(rebuilt.samples.iter().filter(|s| s.failed).count() <= BUDGET);

    // The rebuilt gradient is the same mathematical object the full
    // fleet computed: Σ over all partitions, re-sharded. Exact decodes
    // of the same data agree to fp re-association error.
    let clean_g = clean.gradient.as_ref().expect("clean gradient");
    let rebuilt_g = rebuilt.gradient.as_ref().expect("rebuilt gradient");
    for (a, b) in clean_g.iter().zip(rebuilt_g) {
        assert!(
            (a - b).abs() < 1e-9,
            "gradient diverged after recode: {a} vs {b}"
        );
    }
}

#[test]
fn all_workers_dead_is_a_typed_error_not_a_hang() {
    let mut rng = StdRng::seed_from_u64(9);
    let data = Arc::new(synthetic::linear_regression(40, DIM, 0.05, &mut rng));
    let model = Arc::new(LinearRegression::new(DIM));
    let code = heter_aware(&[1.0; 2], 2, 0, &mut rng).expect("scheme");
    let config = RuntimeConfig::nominal(2)
        .with_backend(CodecBackend::Exact)
        .with_escalation(
            EscalationPolicy::escalate_to(CodecBackend::Approx).with_deadline(DEADLINE),
        );

    let listener = SocketListener::bind().expect("bind loopback");
    let addr = listener.addr().to_string();
    let mut fleet =
        WorkerFleet::spawn(env!("CARGO_BIN_EXE_hetgc-worker"), &addr, 2).expect("spawn workers");
    let mut cluster = SocketCluster::start(
        listener,
        code,
        model,
        ModelSpec::Linear { dim: DIM as u32 },
        data,
        &config,
    )
    .expect("socket cluster start");

    let params = vec![0.0; DIM + 1];
    cluster.round(1, &params).expect("clean round");
    fleet.kill(0);
    fleet.kill(1);
    std::thread::sleep(Duration::from_millis(50));
    let err = cluster.round(2, &params).expect_err("no workers left");
    let msg = err.to_string();
    assert!(
        msg.contains("worker") || msg.contains("undecodable") || msg.contains("Undecodable"),
        "unexpected error: {msg}"
    );
}
