//! Cross-encoding differential harness: the same training run over four
//! real `hetgc-worker` processes under every negotiated payload
//! encoding, compared against the full-width `f64` baseline.
//!
//! What this pins, end to end over real sockets:
//!
//! * negotiation — every link lands on the requested encoding (the
//!   workers advertise it in their `Hello`), observable via
//!   [`SocketCluster::link_encodings`];
//! * fidelity — `F32Narrow` tracks the `f64` loss to 1e-6 and
//!   `Int8Quant` **with error feedback** to 1e-3;
//! * compression — per-link `bytes_received` drops by ≥ 1.8x (f32) and
//!   ≥ 4x (int8) against the baseline run;
//! * reporting — the measured quantization error surfaces in each
//!   lossy [`hetgc::RoundRecord`] (and its JSON), and stays exactly
//!   absent from lossless runs.

use std::sync::Arc;

use hetgc::{naive, synthetic, LinearRegression, Sgd, TrainDriver, TrainOutcome};
use hetgc_net::{
    ModelSpec, PayloadEncoding, SocketCluster, SocketEngine, SocketListener, WorkerFleet,
    DEFAULT_CHUNK_LEN,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 512;
const SAMPLES: usize = 768;
const WORKERS: usize = 4;
const ROUNDS: usize = 200;
const SEED: u64 = 11;

struct EncodedRun {
    outcome: TrainOutcome,
    /// Per-link bytes received by the master over the whole run
    /// (accept order).
    link_received: Vec<u64>,
    negotiated: Vec<PayloadEncoding>,
}

/// One full training run over four worker processes with `encoding`
/// requested for every link.
fn run(encoding: PayloadEncoding) -> EncodedRun {
    let mut rng = StdRng::seed_from_u64(42);
    let data = Arc::new(synthetic::linear_regression(SAMPLES, DIM, 0.05, &mut rng));
    let model = Arc::new(LinearRegression::new(DIM));
    let config = hetgc::RuntimeConfig::nominal(WORKERS);

    let listener = SocketListener::bind().expect("bind loopback");
    let addr = listener.addr().to_string();
    let _fleet = WorkerFleet::spawn(env!("CARGO_BIN_EXE_hetgc-worker"), &addr, WORKERS)
        .expect("spawn workers");
    let cluster = SocketCluster::start_encoded(
        listener,
        naive(WORKERS).expect("naive code"),
        Arc::clone(&model),
        ModelSpec::Linear { dim: DIM as u32 },
        Arc::clone(&data),
        &config,
        DEFAULT_CHUNK_LEN,
        encoding,
    )
    .expect("socket cluster start");
    let negotiated = cluster.link_encodings().to_vec();
    let links = cluster.link_stats();

    let mut engine = SocketEngine::new(cluster);
    let mut step_rng = StdRng::seed_from_u64(SEED);
    let outcome = TrainDriver::new(model.as_ref(), data.as_ref(), Sgd::new(0.25))
        .run(&mut engine, ROUNDS, &mut step_rng)
        .expect("socket run");
    EncodedRun {
        outcome,
        link_received: links.iter().map(|l| l.received_bytes()).collect(),
        negotiated,
    }
}

#[test]
fn quantized_links_compress_without_losing_the_trajectory() {
    let f64_run = run(PayloadEncoding::F64);
    let f32_run = run(PayloadEncoding::F32);
    let int8_run = run(PayloadEncoding::Int8);

    // Negotiation: the spawned workers advertise every lossy encoding,
    // so each of the four links lands on exactly what was requested.
    assert_eq!(f64_run.negotiated, vec![PayloadEncoding::F64; WORKERS]);
    assert_eq!(f32_run.negotiated, vec![PayloadEncoding::F32; WORKERS]);
    assert_eq!(int8_run.negotiated, vec![PayloadEncoding::Int8; WORKERS]);

    // All three runs actually trained.
    for (label, r) in [("f64", &f64_run), ("f32", &f32_run), ("int8", &int8_run)] {
        assert_eq!(r.outcome.rounds(), ROUNDS, "{label} run finished");
        let first = r.outcome.records.first().and_then(|rec| rec.loss).unwrap();
        let last = r.outcome.final_loss().unwrap();
        assert!(last < first, "{label}: no convergence ({first} -> {last})");
    }

    // Fidelity: f32 narrowing is inside the 1e-6 envelope; int8 with
    // worker-side error feedback holds the 1e-3 acceptance bound.
    let base = f64_run.outcome.final_loss().unwrap();
    let f32_loss = f32_run.outcome.final_loss().unwrap();
    let int8_loss = int8_run.outcome.final_loss().unwrap();
    assert!(
        (f32_loss - base).abs() < 1e-6 * (1.0 + base),
        "f32 loss {f32_loss} strays from f64 loss {base}"
    );
    assert!(
        (int8_loss - base).abs() < 1e-3 * (1.0 + base),
        "int8+EF loss {int8_loss} strays from f64 loss {base}"
    );

    // Compression: every link's total received bytes shrink by at least
    // the per-codec floor (frame headers and round-control traffic are
    // part of the measurement — this is real wire footprint, not payload
    // arithmetic).
    assert_eq!(f64_run.link_received.len(), WORKERS);
    for w in 0..WORKERS {
        let base_bytes = f64_run.link_received[w] as f64;
        let f32_ratio = base_bytes / f32_run.link_received[w] as f64;
        let int8_ratio = base_bytes / int8_run.link_received[w] as f64;
        assert!(
            f32_ratio >= 1.8,
            "link {w}: f32 saved only {f32_ratio:.2}x ({} -> {})",
            f64_run.link_received[w],
            f32_run.link_received[w]
        );
        assert!(
            int8_ratio >= 4.0,
            "link {w}: int8 saved only {int8_ratio:.2}x ({} -> {})",
            f64_run.link_received[w],
            int8_run.link_received[w]
        );
    }

    // Reporting: every lossy round carries its measured quantization
    // error into the RoundRecord and its JSON line; lossless rounds
    // stay bitwise on the legacy layout (no `wire_error` key at all).
    for rec in &int8_run.outcome.records {
        assert!(
            rec.wire_error > 0.0,
            "round {}: int8 round lost its wire error",
            rec.round
        );
        assert!(rec.to_json().contains("\"wire_error\":"));
    }
    for rec in &f64_run.outcome.records {
        assert_eq!(rec.wire_error, 0.0);
        assert!(!rec.to_json().contains("wire_error"));
    }
    // f32 is lossy in principle; its measured error must in any case be
    // orders of magnitude below int8's.
    let f32_err: f64 = f32_run.outcome.records.iter().map(|r| r.wire_error).sum();
    let int8_err: f64 = int8_run.outcome.records.iter().map(|r| r.wire_error).sum();
    assert!(int8_err > 0.0);
    assert!(
        f32_err < int8_err / 1e3,
        "f32 cumulative error {f32_err} not well below int8's {int8_err}"
    );

    // The quantized runs also gated their steps: a lossy round's step
    // scale dips below the lossless run's on the same round index.
    let gated = int8_run
        .outcome
        .records
        .iter()
        .zip(&f64_run.outcome.records)
        .all(|(i8r, f64r)| i8r.step_scale <= f64r.step_scale);
    assert!(gated, "int8 step scaling never tightened under wire error");
}
