//! End-to-end loopback: `TrainDriver` and `PipelinedDriver` over a
//! [`SocketCluster`] of four real `hetgc-worker` *processes* on
//! 127.0.0.1.
//!
//! The strongest claim is bitwise: under `naive(4)` every decode needs
//! all four arrivals, so the decode plan is arrival-order-independent,
//! and the worker compute is operation-for-operation the threaded
//! worker's — the socket trajectory must therefore equal the threaded
//! trajectory to the last bit, same seeds, across a process boundary and
//! a TCP stream. Transport is additionally verified by the per-round
//! byte counters: every socket round moves real traffic both ways.

use std::sync::Arc;

use hetgc::{
    naive, synthetic, LinearRegression, Model, PipelinedDriver, RuntimeConfig, Sgd, ThreadedEngine,
    TrainDriver, TrainOutcome,
};
use hetgc_net::{ModelSpec, SocketCluster, SocketEngine, SocketListener, WorkerFleet};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 6;
const SAMPLES: usize = 120;
const WORKERS: usize = 4;
const ROUNDS: usize = 8;
const SEED: u64 = 7;

fn fixture() -> (Arc<LinearRegression>, Arc<hetgc::Dataset>) {
    let mut rng = StdRng::seed_from_u64(42);
    let data = synthetic::linear_regression(SAMPLES, DIM, 0.05, &mut rng);
    (Arc::new(LinearRegression::new(DIM)), Arc::new(data))
}

/// Spawns the fleet, starts the cluster, wraps it as an engine.
fn socket_engine(
    model: &Arc<LinearRegression>,
    data: &Arc<hetgc::Dataset>,
    config: &RuntimeConfig,
) -> (SocketEngine<LinearRegression>, WorkerFleet) {
    let listener = SocketListener::bind().expect("bind loopback");
    let addr = listener.addr().to_string();
    let fleet = WorkerFleet::spawn(env!("CARGO_BIN_EXE_hetgc-worker"), &addr, WORKERS)
        .expect("spawn workers");
    let cluster = SocketCluster::start(
        listener,
        naive(WORKERS).expect("naive code"),
        Arc::clone(model),
        ModelSpec::Linear { dim: DIM as u32 },
        Arc::clone(data),
        config,
    )
    .expect("socket cluster start");
    (SocketEngine::new(cluster), fleet)
}

fn run_threaded(
    model: &Arc<LinearRegression>,
    data: &Arc<hetgc::Dataset>,
    config: &RuntimeConfig,
    pipelined: bool,
) -> TrainOutcome {
    let mut engine = ThreadedEngine::new(
        naive(WORKERS).expect("naive code"),
        Arc::clone(model),
        Arc::clone(data),
        config,
    )
    .expect("threaded engine");
    let mut rng = StdRng::seed_from_u64(SEED);
    if pipelined {
        PipelinedDriver::new(model.as_ref(), data.as_ref(), Sgd::new(0.1))
            .run(&mut engine, ROUNDS, &mut rng)
            .expect("threaded pipelined run")
    } else {
        TrainDriver::new(model.as_ref(), data.as_ref(), Sgd::new(0.1))
            .run(&mut engine, ROUNDS, &mut rng)
            .expect("threaded run")
    }
}

fn run_socket(
    model: &Arc<LinearRegression>,
    data: &Arc<hetgc::Dataset>,
    config: &RuntimeConfig,
    pipelined: bool,
) -> TrainOutcome {
    let (mut engine, _fleet) = socket_engine(model, data, config);
    let mut rng = StdRng::seed_from_u64(SEED);
    if pipelined {
        PipelinedDriver::new(model.as_ref(), data.as_ref(), Sgd::new(0.1))
            .run(&mut engine, ROUNDS, &mut rng)
            .expect("socket pipelined run")
    } else {
        TrainDriver::new(model.as_ref(), data.as_ref(), Sgd::new(0.1))
            .run(&mut engine, ROUNDS, &mut rng)
            .expect("socket run")
    }
}

/// Bitwise equality of the full trajectory: params, per-round losses,
/// residuals and decode weights.
fn assert_trajectories_match(socket: &TrainOutcome, threaded: &TrainOutcome) {
    assert_eq!(socket.rounds(), threaded.rounds());
    assert_eq!(
        socket.params, threaded.params,
        "socket and threaded parameter trajectories diverged"
    );
    for (s, t) in socket.records.iter().zip(&threaded.records) {
        assert_eq!(s.loss, t.loss, "round {} loss diverged", s.round);
        assert_eq!(s.residual, t.residual, "round {} residual", s.round);
        assert_eq!(
            s.results_used, t.results_used,
            "round {} decode weight",
            s.round
        );
    }
}

/// Every socket round must have moved real traffic in both directions.
fn assert_real_traffic(outcome: &TrainOutcome) {
    for r in &outcome.records {
        assert!(r.bytes_sent > 0, "round {} reported no bytes sent", r.round);
        assert!(
            r.bytes_received > 0,
            "round {} reported no bytes received",
            r.round
        );
    }
}

#[test]
fn train_driver_over_sockets_matches_threaded_bitwise() {
    let (model, data) = fixture();
    let config = RuntimeConfig::nominal(WORKERS);
    let threaded = run_threaded(&model, &data, &config, false);
    let socket = run_socket(&model, &data, &config, false);

    assert_trajectories_match(&socket, &threaded);
    assert_real_traffic(&socket);
    // The in-process engine reports no wire traffic, by contract.
    assert!(threaded.records.iter().all(|r| r.bytes_sent == 0));

    // Convergence, not just agreement: the loss fell.
    let first = socket.records.first().and_then(|r| r.loss).unwrap();
    let last = socket.final_loss().unwrap();
    assert!(
        last < first,
        "no convergence over sockets: {first} → {last}"
    );
}

#[test]
fn pipelined_driver_over_sockets_matches_threaded_bitwise() {
    let (model, data) = fixture();
    let config = RuntimeConfig::nominal(WORKERS);
    let threaded = run_threaded(&model, &data, &config, true);
    let socket = run_socket(&model, &data, &config, true);

    assert_trajectories_match(&socket, &threaded);
    assert_real_traffic(&socket);
    let first = socket.records.first().and_then(|r| r.loss).unwrap();
    let last = socket.final_loss().unwrap();
    assert!(
        last < first,
        "no pipelined convergence over sockets: {first} → {last}"
    );
}

#[test]
fn socket_round_reports_real_arrival_telemetry() {
    // Drive the cluster directly: each completed round carries samples
    // with measured arrival offsets for every worker.
    let (model, data) = fixture();
    let config = RuntimeConfig::nominal(WORKERS);
    let (mut engine, _fleet) = socket_engine(&model, &data, &config);

    use hetgc::RoundEngine;
    let params = vec![0.0; model.num_params()];
    let mut rng = StdRng::seed_from_u64(3);
    let round = engine.round(1, &params, &mut rng).expect("round");
    assert_eq!(round.samples.len(), WORKERS);
    for s in &round.samples {
        assert!(!s.failed, "worker {} failed on loopback", s.worker);
        let arrival = s.arrival_seconds.expect("completed sample has arrival");
        assert!(arrival > 0.0, "worker {} arrival not measured", s.worker);
    }
    assert!(round.bytes_sent > 0 && round.bytes_received > 0);
}
