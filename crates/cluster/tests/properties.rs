//! Property-based tests of the cluster model: partitioning exactness,
//! estimator convergence, straggler-model contracts.

use hetgc_cluster::{
    DelayDistribution, EstimationNoise, PartitionAssignment, SamplingEstimator, StragglerModel,
    ThroughputEstimator,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partitions cover [0, n) exactly, contiguously, sizes within 1.
    #[test]
    fn partitioning_is_exact(n in 1usize..500, k in 1usize..50) {
        prop_assume!(k <= n);
        let pa = PartitionAssignment::even(n, k).unwrap();
        prop_assert_eq!(pa.partitions(), k);
        prop_assert_eq!(pa.samples(), n);
        let mut cursor = 0;
        let mut min_len = usize::MAX;
        let mut max_len = 0;
        for (lo, hi) in pa.iter() {
            prop_assert_eq!(lo, cursor);
            prop_assert!(hi > lo);
            min_len = min_len.min(hi - lo);
            max_len = max_len.max(hi - lo);
            cursor = hi;
        }
        prop_assert_eq!(cursor, n);
        prop_assert!(max_len - min_len <= 1, "uneven: {min_len}..{max_len}");
    }

    /// partition_of agrees with the ranges.
    #[test]
    fn partition_of_agrees_with_ranges(n in 1usize..200, k in 1usize..20, i in 0usize..200) {
        prop_assume!(k <= n);
        let pa = PartitionAssignment::even(n, k).unwrap();
        match pa.partition_of(i) {
            Some(p) => {
                let (lo, hi) = pa.range(p).unwrap();
                prop_assert!(lo <= i && i < hi);
            }
            None => prop_assert!(i >= n),
        }
    }

    /// The sampling estimator recovers a constant true rate exactly.
    #[test]
    fn sampling_estimator_recovers_constant_rate(
        rate in 0.5f64..100.0,
        observations in 1usize..20,
    ) {
        let mut est = SamplingEstimator::new(1);
        for i in 1..=observations {
            let elapsed = 0.1 * i as f64;
            est.observe(0, rate * elapsed, elapsed);
        }
        let estimate = est.estimate(0).unwrap();
        prop_assert!((estimate - rate).abs() < 1e-9 * rate.max(1.0));
    }

    /// Straggler events: the number of affected workers matches the model.
    #[test]
    fn random_choice_affects_exactly_count(m in 1usize..30, count in 0usize..35, seed in any::<u64>()) {
        let model = StragglerModel::RandomChoice {
            count,
            delay: DelayDistribution::Constant(1.0),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let events = model.sample_iteration(m, &mut rng);
        let affected = events
            .iter()
            .filter(|e| !matches!(e, hetgc_cluster::StragglerEvent::Normal))
            .count();
        prop_assert_eq!(affected, count.min(m));
    }

    /// Delay samples respect their distribution's support.
    #[test]
    fn delays_in_support(low in 0.0f64..5.0, span in 0.1f64..5.0, seed in any::<u64>()) {
        let d = DelayDistribution::Uniform { low, high: low + span };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= low && x < low + span);
        }
    }

    /// Estimation noise keeps estimates strictly positive and, at σ = 0,
    /// exact.
    #[test]
    fn noise_positivity(sigma in 0.0f64..1.5, seed in any::<u64>()) {
        let truth = vec![1.0, 5.0, 20.0];
        let mut rng = StdRng::seed_from_u64(seed);
        let noisy = EstimationNoise::new(sigma).apply(&truth, &mut rng);
        prop_assert_eq!(noisy.len(), truth.len());
        for (n, t) in noisy.iter().zip(&truth) {
            prop_assert!(*n > 0.0);
            if sigma == 0.0 {
                prop_assert_eq!(n, t);
            }
        }
    }
}
