//! # hetgc-cluster
//!
//! The heterogeneous cluster model used by the paper's evaluation (§VI):
//!
//! * [`WorkerSpec`] / [`ClusterSpec`] — workers parameterized by vCPU count
//!   with throughput ∝ vCPUs, plus verbatim builders for the paper's
//!   Table II clusters ([`ClusterSpec::cluster_a`] … [`ClusterSpec::cluster_d`]).
//! * [`StragglerModel`] — transient-delay and fail-stop injection, mirroring
//!   the paper's "add extra delay to any s random workers" methodology
//!   (Fig. 2) and its transient-fluctuation model (Fig. 3).
//! * [`ThroughputEstimator`] — sampling/EWMA estimation of worker
//!   throughput `c_i`, with controllable estimation noise. Inaccurate
//!   estimates are the motivation for the paper's group-based scheme (§V).
//!
//! The model deliberately contains *no* simulation logic — that lives in
//! `hetgc-sim` (discrete-event) and `hetgc-runtime` (real threads), both of
//! which consume these types.
//!
//! ```
//! use hetgc_cluster::ClusterSpec;
//!
//! let cluster = ClusterSpec::cluster_a();
//! assert_eq!(cluster.len(), 8); // 2+2+3+1 nodes (Table II)
//! let c = cluster.throughputs();
//! assert_eq!(c.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod estimate;
mod partition;
mod spec;
mod straggler;
mod worker;

pub use error::ClusterError;
pub use estimate::{EstimationNoise, EwmaEstimator, SamplingEstimator, ThroughputEstimator};
pub use partition::PartitionAssignment;
pub use spec::ClusterSpec;
pub use straggler::{DelayDistribution, StragglerEvent, StragglerModel};
pub use worker::{WorkerId, WorkerSpec};
