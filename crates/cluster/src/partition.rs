//! Partition bookkeeping: which sample ranges make up each data partition.
//!
//! The coding layer thinks in partition indices; the ML layer thinks in
//! sample ranges. [`PartitionAssignment`] is the bridge: it slices a
//! dataset of `n` samples into `k` near-equal contiguous partitions
//! (the paper's "k equal-sized data partitions", §III-A) and answers
//! range queries for both layers.

use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// A partitioning of `n` samples into `k` contiguous ranges.
///
/// Partition `p` covers `[start(p), end(p))`. When `k ∤ n` the first
/// `n mod k` partitions get one extra sample, so sizes differ by at most 1.
///
/// # Example
///
/// ```
/// use hetgc_cluster::PartitionAssignment;
///
/// # fn main() -> Result<(), hetgc_cluster::ClusterError> {
/// let pa = PartitionAssignment::even(10, 3)?;
/// assert_eq!(pa.range(0)?, (0, 4));  // 4 samples
/// assert_eq!(pa.range(1)?, (4, 7));  // 3 samples
/// assert_eq!(pa.range(2)?, (7, 10)); // 3 samples
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionAssignment {
    boundaries: Vec<usize>,
}

impl PartitionAssignment {
    /// Splits `samples` into `partitions` near-equal contiguous ranges.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownPartition`] if `partitions == 0` or
    /// `partitions > samples` (a partition may not be empty — the paper's
    /// partial gradients are over non-empty data).
    pub fn even(samples: usize, partitions: usize) -> Result<Self, ClusterError> {
        if partitions == 0 || partitions > samples {
            return Err(ClusterError::UnknownPartition {
                partition: partitions,
                count: samples,
            });
        }
        let base = samples / partitions;
        let extra = samples % partitions;
        let mut boundaries = Vec::with_capacity(partitions + 1);
        let mut pos = 0;
        boundaries.push(0);
        for p in 0..partitions {
            pos += base + usize::from(p < extra);
            boundaries.push(pos);
        }
        debug_assert_eq!(pos, samples);
        Ok(PartitionAssignment { boundaries })
    }

    /// Number of partitions `k`.
    pub fn partitions(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Total number of samples `n`.
    pub fn samples(&self) -> usize {
        *self.boundaries.last().expect("non-empty boundaries")
    }

    /// The `[start, end)` sample range of partition `p`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownPartition`] for out-of-range `p`.
    pub fn range(&self, p: usize) -> Result<(usize, usize), ClusterError> {
        if p + 1 >= self.boundaries.len() {
            return Err(ClusterError::UnknownPartition {
                partition: p,
                count: self.partitions(),
            });
        }
        Ok((self.boundaries[p], self.boundaries[p + 1]))
    }

    /// Number of samples in partition `p`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownPartition`] for out-of-range `p`.
    pub fn len_of(&self, p: usize) -> Result<usize, ClusterError> {
        let (lo, hi) = self.range(p)?;
        Ok(hi - lo)
    }

    /// The partition containing sample index `i`, or `None` past the end.
    pub fn partition_of(&self, i: usize) -> Option<usize> {
        if i >= self.samples() {
            return None;
        }
        // boundaries is sorted; binary search for the right range.
        match self.boundaries.binary_search(&i) {
            Ok(exact) if exact == self.boundaries.len() - 1 => None,
            Ok(exact) => Some(exact),
            Err(ins) => Some(ins - 1),
        }
    }

    /// Iterates over the `(start, end)` ranges in partition order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.boundaries.windows(2).map(|w| (w[0], w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_division() {
        let pa = PartitionAssignment::even(12, 4).unwrap();
        assert_eq!(pa.partitions(), 4);
        assert_eq!(pa.samples(), 12);
        for p in 0..4 {
            assert_eq!(pa.len_of(p).unwrap(), 3);
        }
    }

    #[test]
    fn uneven_division_sizes_differ_by_at_most_one() {
        let pa = PartitionAssignment::even(10, 3).unwrap();
        let sizes: Vec<usize> = (0..3).map(|p| pa.len_of(p).unwrap()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(sizes.iter().sum::<usize>(), 10);
    }

    #[test]
    fn ranges_are_contiguous_and_cover() {
        let pa = PartitionAssignment::even(17, 5).unwrap();
        let mut expected_start = 0;
        for (lo, hi) in pa.iter() {
            assert_eq!(lo, expected_start);
            assert!(hi > lo);
            expected_start = hi;
        }
        assert_eq!(expected_start, 17);
    }

    #[test]
    fn partition_of_lookup() {
        let pa = PartitionAssignment::even(10, 3).unwrap(); // [0,4) [4,7) [7,10)
        assert_eq!(pa.partition_of(0), Some(0));
        assert_eq!(pa.partition_of(3), Some(0));
        assert_eq!(pa.partition_of(4), Some(1));
        assert_eq!(pa.partition_of(9), Some(2));
        assert_eq!(pa.partition_of(10), None);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(PartitionAssignment::even(5, 0).is_err());
        assert!(PartitionAssignment::even(3, 5).is_err());
    }

    #[test]
    fn range_out_of_bounds() {
        let pa = PartitionAssignment::even(4, 2).unwrap();
        assert!(pa.range(2).is_err());
        assert!(pa.len_of(7).is_err());
    }

    #[test]
    fn single_partition() {
        let pa = PartitionAssignment::even(5, 1).unwrap();
        assert_eq!(pa.range(0).unwrap(), (0, 5));
        assert_eq!(pa.partition_of(4), Some(0));
    }
}
