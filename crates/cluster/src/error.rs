use std::error::Error;
use std::fmt;

/// Errors produced by the cluster model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A cluster must contain at least one worker.
    EmptyCluster,
    /// A worker index was out of range.
    UnknownWorker {
        /// The offending index.
        worker: usize,
        /// Number of workers in the cluster.
        size: usize,
    },
    /// An estimator was asked for an estimate before observing any sample.
    NoSamples {
        /// The worker lacking samples.
        worker: usize,
    },
    /// A partition assignment referenced a partition out of range.
    UnknownPartition {
        /// The offending partition index.
        partition: usize,
        /// Number of partitions.
        count: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::EmptyCluster => write!(f, "cluster has no workers"),
            ClusterError::UnknownWorker { worker, size } => {
                write!(f, "worker {worker} out of range (cluster size {size})")
            }
            ClusterError::NoSamples { worker } => {
                write!(f, "no throughput samples recorded for worker {worker}")
            }
            ClusterError::UnknownPartition { partition, count } => {
                write!(f, "partition {partition} out of range ({count} partitions)")
            }
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ClusterError::EmptyCluster
            .to_string()
            .contains("no workers"));
        assert!(ClusterError::UnknownWorker { worker: 9, size: 4 }
            .to_string()
            .contains("9"));
        assert!(ClusterError::NoSamples { worker: 1 }
            .to_string()
            .contains("samples"));
        assert!(ClusterError::UnknownPartition {
            partition: 5,
            count: 3
        }
        .to_string()
        .contains("partition 5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
    }
}
