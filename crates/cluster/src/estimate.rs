//! Throughput estimation.
//!
//! The heter-aware scheme needs the throughputs `c_i`, "which can be
//! estimated by sampling" (§III-C). In a real deployment the estimate is
//! imperfect — the paper's §V opens by noting that `c_i` "is hard to be
//! measured exactly because of tiny fluctuation in runtime", which is
//! precisely why the group-based scheme exists. This module provides:
//!
//! * [`SamplingEstimator`] — cumulative work/time averaging.
//! * [`EwmaEstimator`] — exponentially-weighted moving average, tracking
//!   drifting speeds.
//! * [`EstimationNoise`] — utility to corrupt ground-truth throughputs with
//!   multiplicative noise, so experiments can sweep estimation quality.

use rand::Rng;

use crate::error::ClusterError;

/// Common interface of throughput estimators.
///
/// `observe(worker, work_done, elapsed)` records that `worker` completed
/// `work_done` units (samples, partitions — any consistent unit) in
/// `elapsed` seconds; `estimate(worker)` returns the current throughput
/// estimate in units/second.
pub trait ThroughputEstimator {
    /// Records one timing sample for a worker.
    fn observe(&mut self, worker: usize, work_done: f64, elapsed: f64);

    /// Current estimate for one worker.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownWorker`] for out-of-range indices;
    /// [`ClusterError::NoSamples`] before the first observation.
    fn estimate(&self, worker: usize) -> Result<f64, ClusterError>;

    /// Estimates for all workers.
    ///
    /// # Errors
    ///
    /// Same as [`ThroughputEstimator::estimate`] for the first failing
    /// worker.
    fn estimates(&self) -> Result<Vec<f64>, ClusterError>;
}

/// Cumulative sampling estimator: `ĉ_i = Σ work / Σ time`.
///
/// This is the estimator the paper implies ("estimated by sampling"): run a
/// few profiling iterations, divide.
#[derive(Debug, Clone)]
pub struct SamplingEstimator {
    work: Vec<f64>,
    time: Vec<f64>,
    samples: Vec<usize>,
}

impl SamplingEstimator {
    /// An estimator for `m` workers with no observations yet.
    pub fn new(m: usize) -> Self {
        SamplingEstimator {
            work: vec![0.0; m],
            time: vec![0.0; m],
            samples: vec![0; m],
        }
    }

    /// Number of observations recorded for `worker` (0 when out of range).
    pub fn sample_count(&self, worker: usize) -> usize {
        self.samples.get(worker).copied().unwrap_or(0)
    }
}

impl ThroughputEstimator for SamplingEstimator {
    fn observe(&mut self, worker: usize, work_done: f64, elapsed: f64) {
        let valid_sample = elapsed > 0.0 && work_done >= 0.0; // false for NaN too
        if worker >= self.work.len() || !valid_sample {
            return; // ignore garbage samples rather than poisoning state
        }
        self.work[worker] += work_done;
        self.time[worker] += elapsed;
        self.samples[worker] += 1;
    }

    fn estimate(&self, worker: usize) -> Result<f64, ClusterError> {
        if worker >= self.work.len() {
            return Err(ClusterError::UnknownWorker {
                worker,
                size: self.work.len(),
            });
        }
        if self.samples[worker] == 0 {
            return Err(ClusterError::NoSamples { worker });
        }
        Ok(self.work[worker] / self.time[worker])
    }

    fn estimates(&self) -> Result<Vec<f64>, ClusterError> {
        (0..self.work.len()).map(|w| self.estimate(w)).collect()
    }
}

/// Exponentially-weighted moving-average estimator:
/// `ĉ ← (1−α)·ĉ + α·(work/elapsed)`.
///
/// Tracks drifting worker speeds (e.g. co-tenant interference that comes
/// and goes) at the cost of more variance than [`SamplingEstimator`].
#[derive(Debug, Clone)]
pub struct EwmaEstimator {
    alpha: f64,
    current: Vec<Option<f64>>,
}

impl EwmaEstimator {
    /// An EWMA estimator for `m` workers with smoothing factor
    /// `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(m: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EwmaEstimator {
            alpha,
            current: vec![None; m],
        }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl ThroughputEstimator for EwmaEstimator {
    fn observe(&mut self, worker: usize, work_done: f64, elapsed: f64) {
        let valid_sample = elapsed > 0.0 && work_done >= 0.0; // false for NaN too
        if worker >= self.current.len() || !valid_sample {
            return;
        }
        let rate = work_done / elapsed;
        self.current[worker] = Some(match self.current[worker] {
            None => rate,
            Some(prev) => (1.0 - self.alpha) * prev + self.alpha * rate,
        });
    }

    fn estimate(&self, worker: usize) -> Result<f64, ClusterError> {
        match self.current.get(worker) {
            None => Err(ClusterError::UnknownWorker {
                worker,
                size: self.current.len(),
            }),
            Some(None) => Err(ClusterError::NoSamples { worker }),
            Some(Some(v)) => Ok(*v),
        }
    }

    fn estimates(&self) -> Result<Vec<f64>, ClusterError> {
        (0..self.current.len()).map(|w| self.estimate(w)).collect()
    }
}

/// Multiplicative estimation noise: `ĉ_i = c_i · max(floor, 1 + σ·z_i)`
/// with `z_i` standard normal.
///
/// Experiments use this to answer "how wrong can the estimates be before
/// heter-aware degrades, and does group-based help?" — the paper's Fig. 4/5
/// setting where group-based wins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimationNoise {
    sigma: f64,
    floor: f64,
}

impl EstimationNoise {
    /// Noise with relative standard deviation `sigma`; the multiplier is
    /// clamped below at `0.05` so estimates stay positive.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn new(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative"
        );
        EstimationNoise { sigma, floor: 0.05 }
    }

    /// Exact estimates (σ = 0).
    pub fn none() -> Self {
        EstimationNoise::new(0.0)
    }

    /// The relative standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Applies the noise to ground-truth throughputs.
    pub fn apply<R: Rng + ?Sized>(&self, truth: &[f64], rng: &mut R) -> Vec<f64> {
        truth
            .iter()
            .map(|&c| {
                let z = standard_normal(rng);
                c * (1.0 + self.sigma * z).max(self.floor)
            })
            .collect()
    }
}

/// Box–Muller standard normal (keeps us off `rand_distr`).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_estimator_averages() {
        let mut e = SamplingEstimator::new(2);
        e.observe(0, 10.0, 2.0); // 5 u/s
        e.observe(0, 30.0, 2.0); // cumulative: 40 work / 4 s = 10 u/s
        assert_eq!(e.estimate(0).unwrap(), 10.0);
        assert_eq!(e.sample_count(0), 2);
    }

    #[test]
    fn sampling_estimator_errors() {
        let e = SamplingEstimator::new(2);
        assert!(matches!(
            e.estimate(0),
            Err(ClusterError::NoSamples { worker: 0 })
        ));
        assert!(matches!(
            e.estimate(5),
            Err(ClusterError::UnknownWorker { .. })
        ));
        assert!(e.estimates().is_err());
    }

    #[test]
    fn sampling_estimator_ignores_garbage() {
        let mut e = SamplingEstimator::new(1);
        e.observe(0, 10.0, 0.0); // zero elapsed: ignored
        e.observe(0, -1.0, 1.0); // negative work: ignored
        e.observe(9, 10.0, 1.0); // out of range: ignored
        assert_eq!(e.sample_count(0), 0);
    }

    #[test]
    fn sampling_estimates_all() {
        let mut e = SamplingEstimator::new(2);
        e.observe(0, 4.0, 2.0);
        e.observe(1, 9.0, 3.0);
        assert_eq!(e.estimates().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn ewma_tracks_change() {
        let mut e = EwmaEstimator::new(1, 0.5);
        e.observe(0, 10.0, 1.0); // 10
        assert_eq!(e.estimate(0).unwrap(), 10.0);
        e.observe(0, 20.0, 1.0); // 0.5*10 + 0.5*20 = 15
        assert_eq!(e.estimate(0).unwrap(), 15.0);
        assert_eq!(e.alpha(), 0.5);
    }

    #[test]
    fn ewma_converges_to_steady_rate() {
        let mut e = EwmaEstimator::new(1, 0.3);
        for _ in 0..60 {
            e.observe(0, 7.0, 1.0);
        }
        assert!((e.estimate(0).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        EwmaEstimator::new(1, 0.0);
    }

    #[test]
    fn noise_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let truth = vec![1.0, 2.0, 3.0];
        assert_eq!(EstimationNoise::none().apply(&truth, &mut rng), truth);
    }

    #[test]
    fn noise_preserves_positivity() {
        let mut rng = StdRng::seed_from_u64(2);
        let noise = EstimationNoise::new(2.0); // huge sigma
        let out = noise.apply(&vec![1.0; 200], &mut rng);
        assert!(out.iter().all(|&x| x > 0.0));
        assert_eq!(noise.sigma(), 2.0);
    }

    #[test]
    fn noise_has_roughly_unit_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let noise = EstimationNoise::new(0.2);
        let out = noise.apply(&vec![1.0; 5000], &mut rng);
        let mean: f64 = out.iter().sum::<f64>() / out.len() as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn noise_rejects_negative_sigma() {
        EstimationNoise::new(-0.1);
    }

    #[test]
    fn estimator_trait_objects_work() {
        let mut est: Box<dyn ThroughputEstimator> = Box::new(SamplingEstimator::new(1));
        est.observe(0, 2.0, 1.0);
        assert_eq!(est.estimate(0).unwrap(), 2.0);
    }
}
