use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a worker within a cluster (dense index, `0..m`).
///
/// A newtype rather than a bare `usize` so that worker indices, partition
/// indices and iteration counters cannot be confused at API boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub usize);

impl WorkerId {
    /// The dense index of this worker.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}", self.0)
    }
}

impl From<usize> for WorkerId {
    fn from(i: usize) -> Self {
        WorkerId(i)
    }
}

/// Static description of one worker node.
///
/// The paper's clusters are QingCloud "performance type" VMs whose relevant
/// property is the vCPU count; gradient throughput is modelled as
/// proportional to vCPUs (`throughput = vcpus × per_core_rate`). A
/// `speed_factor` multiplier captures persistent deviations from that ideal
/// (background daemons, NUMA effects) when experiments want them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerSpec {
    vcpus: u32,
    speed_factor: f64,
}

impl WorkerSpec {
    /// A worker with the given vCPU count and nominal speed.
    ///
    /// # Panics
    ///
    /// Panics if `vcpus == 0`.
    pub fn new(vcpus: u32) -> Self {
        assert!(vcpus > 0, "a worker needs at least one vCPU");
        WorkerSpec {
            vcpus,
            speed_factor: 1.0,
        }
    }

    /// Sets a persistent speed multiplier (1.0 = nominal).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn with_speed_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "speed factor must be positive"
        );
        self.speed_factor = factor;
        self
    }

    /// The vCPU count.
    pub fn vcpus(&self) -> u32 {
        self.vcpus
    }

    /// The persistent speed multiplier.
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }

    /// Gradient throughput in work-units per second given a per-core rate.
    ///
    /// The unit of "work" is defined by the consumer: the simulator uses
    /// samples/second, the coding layer partitions/second. Only ratios
    /// between workers matter to the schemes.
    pub fn throughput(&self, per_core_rate: f64) -> f64 {
        f64::from(self.vcpus) * self.speed_factor * per_core_rate
    }
}

impl Default for WorkerSpec {
    /// A 1-vCPU nominal worker.
    fn default() -> Self {
        WorkerSpec::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_id_display_and_conversions() {
        let id = WorkerId::from(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "W3");
        assert_eq!(WorkerId(3), id);
    }

    #[test]
    fn worker_id_ordering() {
        assert!(WorkerId(1) < WorkerId(2));
    }

    #[test]
    fn spec_throughput_proportional_to_vcpus() {
        let w2 = WorkerSpec::new(2);
        let w8 = WorkerSpec::new(8);
        assert_eq!(w8.throughput(1.5) / w2.throughput(1.5), 4.0);
    }

    #[test]
    fn spec_speed_factor_scales() {
        let w = WorkerSpec::new(4).with_speed_factor(0.5);
        assert_eq!(w.throughput(1.0), 2.0);
        assert_eq!(w.speed_factor(), 0.5);
        assert_eq!(w.vcpus(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one vCPU")]
    fn zero_vcpus_rejected() {
        WorkerSpec::new(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_speed_factor_rejected() {
        WorkerSpec::new(1).with_speed_factor(0.0);
    }

    #[test]
    fn default_is_one_core() {
        assert_eq!(WorkerSpec::default().vcpus(), 1);
    }
}
