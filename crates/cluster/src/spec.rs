//! Cluster descriptions, including the paper's Table II configurations.

use serde::{Deserialize, Serialize};

use crate::error::ClusterError;
use crate::worker::{WorkerId, WorkerSpec};

/// A heterogeneous cluster: an ordered collection of [`WorkerSpec`]s plus a
/// per-core throughput rate that converts vCPU counts into work-units per
/// second.
///
/// # Example
///
/// ```
/// use hetgc_cluster::{ClusterSpec, WorkerSpec};
///
/// let cluster = ClusterSpec::builder()
///     .add_workers(2, WorkerSpec::new(2))
///     .add_workers(1, WorkerSpec::new(8))
///     .per_core_rate(100.0)
///     .build()
///     .expect("non-empty");
/// assert_eq!(cluster.len(), 3);
/// assert_eq!(cluster.throughputs(), vec![200.0, 200.0, 800.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    workers: Vec<WorkerSpec>,
    per_core_rate: f64,
    name: String,
}

impl ClusterSpec {
    /// Starts building a cluster.
    pub fn builder() -> ClusterSpecBuilder {
        ClusterSpecBuilder::default()
    }

    /// Builds a cluster from a list of `(count, vcpus)` rows — the shape of
    /// the paper's Table II.
    ///
    /// # Errors
    ///
    /// [`ClusterError::EmptyCluster`] if all counts are zero.
    pub fn from_vcpu_rows(
        name: &str,
        rows: &[(usize, u32)],
        per_core_rate: f64,
    ) -> Result<Self, ClusterError> {
        let mut b = ClusterSpec::builder()
            .name(name)
            .per_core_rate(per_core_rate);
        for &(count, vcpus) in rows {
            b = b.add_workers(count, WorkerSpec::new(vcpus));
        }
        b.build()
    }

    /// Table II **Cluster-A** (8 workers): 2×2-vCPU, 2×4-vCPU, 3×8-vCPU,
    /// 1×12-vCPU.
    pub fn cluster_a() -> Self {
        Self::from_vcpu_rows("Cluster-A", &[(2, 2), (2, 4), (3, 8), (1, 12)], 1.0)
            .expect("static table")
    }

    /// Table II **Cluster-B** (16 workers): 2×2, 4×4, 8×8, 2×16 vCPUs.
    pub fn cluster_b() -> Self {
        Self::from_vcpu_rows("Cluster-B", &[(2, 2), (4, 4), (8, 8), (2, 16)], 1.0)
            .expect("static table")
    }

    /// Table II **Cluster-C** (32 workers): 1×2, 4×4, 10×8, 12×12, 5×16
    /// vCPUs.
    pub fn cluster_c() -> Self {
        Self::from_vcpu_rows(
            "Cluster-C",
            &[(1, 2), (4, 4), (10, 8), (12, 12), (5, 16)],
            1.0,
        )
        .expect("static table")
    }

    /// Table II **Cluster-D** (58 workers): 4×4, 20×8, 18×12, 16×16 vCPUs.
    ///
    /// Note: the paper's prose says clusters "range from 8 workers to 48
    /// workers" but its Table II rows for Cluster-D sum to 58; we reproduce
    /// the table verbatim (see DESIGN.md).
    pub fn cluster_d() -> Self {
        Self::from_vcpu_rows("Cluster-D", &[(4, 4), (20, 8), (18, 12), (16, 16)], 1.0)
            .expect("static table")
    }

    /// All four Table II clusters, in order.
    pub fn table2() -> Vec<ClusterSpec> {
        vec![
            Self::cluster_a(),
            Self::cluster_b(),
            Self::cluster_c(),
            Self::cluster_d(),
        ]
    }

    /// A homogeneous cluster of `n` workers with `vcpus` each (for
    /// baselines and tests).
    ///
    /// # Errors
    ///
    /// [`ClusterError::EmptyCluster`] if `n == 0`.
    pub fn homogeneous(n: usize, vcpus: u32) -> Result<Self, ClusterError> {
        Self::from_vcpu_rows("homogeneous", &[(n, vcpus)], 1.0)
    }

    /// The cluster's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of workers `m`.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Returns `true` if the cluster has no workers (builders reject this).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The worker specs in index order.
    pub fn workers(&self) -> &[WorkerSpec] {
        &self.workers
    }

    /// The spec of one worker.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownWorker`] for out-of-range ids.
    pub fn worker(&self, id: WorkerId) -> Result<&WorkerSpec, ClusterError> {
        self.workers
            .get(id.index())
            .ok_or(ClusterError::UnknownWorker {
                worker: id.index(),
                size: self.workers.len(),
            })
    }

    /// Per-core rate (work-units per second per vCPU).
    pub fn per_core_rate(&self) -> f64 {
        self.per_core_rate
    }

    /// True throughputs `c_i` of all workers, in work-units per second.
    pub fn throughputs(&self) -> Vec<f64> {
        self.workers
            .iter()
            .map(|w| w.throughput(self.per_core_rate))
            .collect()
    }

    /// Sum of all worker throughputs `Σc_i`.
    pub fn total_throughput(&self) -> f64 {
        self.throughputs().iter().sum()
    }

    /// Heterogeneity ratio: fastest throughput over slowest.
    pub fn heterogeneity(&self) -> f64 {
        let c = self.throughputs();
        let max = c.iter().cloned().fold(f64::MIN, f64::max);
        let min = c.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    }
}

/// Builder for [`ClusterSpec`] (non-consuming terminal per the builder
/// guideline: `build` borrows).
#[derive(Debug, Clone, Default)]
pub struct ClusterSpecBuilder {
    workers: Vec<WorkerSpec>,
    per_core_rate: Option<f64>,
    name: Option<String>,
}

impl ClusterSpecBuilder {
    /// Appends `count` copies of `spec`.
    pub fn add_workers(mut self, count: usize, spec: WorkerSpec) -> Self {
        self.workers.extend(std::iter::repeat_n(spec, count));
        self
    }

    /// Appends a single worker.
    pub fn add_worker(self, spec: WorkerSpec) -> Self {
        self.add_workers(1, spec)
    }

    /// Sets the per-core work rate (default 1.0).
    pub fn per_core_rate(mut self, rate: f64) -> Self {
        self.per_core_rate = Some(rate);
        self
    }

    /// Sets the cluster name (default `"custom"`).
    pub fn name(mut self, name: &str) -> Self {
        self.name = Some(name.to_owned());
        self
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// [`ClusterError::EmptyCluster`] if no workers were added.
    pub fn build(self) -> Result<ClusterSpec, ClusterError> {
        if self.workers.is_empty() {
            return Err(ClusterError::EmptyCluster);
        }
        Ok(ClusterSpec {
            workers: self.workers,
            per_core_rate: self.per_core_rate.unwrap_or(1.0),
            name: self.name.unwrap_or_else(|| "custom".to_owned()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_sizes_match_paper() {
        assert_eq!(ClusterSpec::cluster_a().len(), 8);
        assert_eq!(ClusterSpec::cluster_b().len(), 16);
        assert_eq!(ClusterSpec::cluster_c().len(), 32);
        assert_eq!(ClusterSpec::cluster_d().len(), 58);
        assert_eq!(ClusterSpec::table2().len(), 4);
    }

    #[test]
    fn cluster_a_composition() {
        let a = ClusterSpec::cluster_a();
        let mut vcpus: Vec<u32> = a.workers().iter().map(|w| w.vcpus()).collect();
        vcpus.sort_unstable();
        assert_eq!(vcpus, vec![2, 2, 4, 4, 8, 8, 8, 12]);
        assert_eq!(a.name(), "Cluster-A");
    }

    #[test]
    fn throughputs_scale_with_rate() {
        let a = ClusterSpec::from_vcpu_rows("x", &[(1, 2), (1, 4)], 10.0).unwrap();
        assert_eq!(a.throughputs(), vec![20.0, 40.0]);
        assert_eq!(a.total_throughput(), 60.0);
        assert_eq!(a.per_core_rate(), 10.0);
    }

    #[test]
    fn heterogeneity_ratio() {
        let a = ClusterSpec::cluster_a();
        assert_eq!(a.heterogeneity(), 6.0); // 12 / 2
    }

    #[test]
    fn builder_roundtrip() {
        let c = ClusterSpec::builder()
            .add_worker(WorkerSpec::new(2))
            .add_workers(2, WorkerSpec::new(4).with_speed_factor(0.5))
            .name("test")
            .build()
            .unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.throughputs(), vec![2.0, 2.0, 2.0]);
        assert_eq!(c.name(), "test");
        assert!(!c.is_empty());
    }

    #[test]
    fn empty_build_rejected() {
        assert_eq!(
            ClusterSpec::builder().build().unwrap_err(),
            ClusterError::EmptyCluster
        );
        assert!(ClusterSpec::homogeneous(0, 2).is_err());
    }

    #[test]
    fn worker_lookup() {
        let c = ClusterSpec::homogeneous(3, 4).unwrap();
        assert_eq!(c.worker(WorkerId(1)).unwrap().vcpus(), 4);
        assert!(matches!(
            c.worker(WorkerId(9)),
            Err(ClusterError::UnknownWorker { worker: 9, size: 3 })
        ));
    }

    #[test]
    fn homogeneous_has_ratio_one() {
        let c = ClusterSpec::homogeneous(5, 8).unwrap();
        assert_eq!(c.heterogeneity(), 1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let c = ClusterSpec::cluster_a();
        let json = serde_json_like(&c);
        assert!(json.contains("Cluster-A"));
    }

    /// Minimal serialization smoke test without a serde_json dependency:
    /// serialize into the debug representation of the Serialize impl via
    /// a trivial serializer is overkill; instead check Debug formatting
    /// carries the name (the struct is plain data).
    fn serde_json_like(c: &ClusterSpec) -> String {
        format!("{c:?}")
    }
}
