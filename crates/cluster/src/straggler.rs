//! Straggler injection models.
//!
//! The paper distinguishes two straggler causes (§I): *transient
//! fluctuations* (faults, resource contention) and *consistent
//! heterogeneity*. Heterogeneity lives in [`crate::ClusterSpec`]; this
//! module injects the transient part:
//!
//! * [`StragglerModel::FixedDelay`] — "stragglers are created artificially
//!   by adding delay to the workers" (Fig. 2 caption).
//! * [`StragglerModel::Failures`] — the delay→∞ fault case.
//! * [`StragglerModel::Random`] / [`StragglerModel::RandomChoice`] —
//!   per-iteration random slowdowns (the environment of Fig. 3).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of the *extra* delay (seconds) suffered by a straggling
/// worker in one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayDistribution {
    /// Always exactly this many seconds.
    Constant(f64),
    /// Uniform in `[low, high)`.
    Uniform {
        /// Inclusive lower bound (seconds).
        low: f64,
        /// Exclusive upper bound (seconds).
        high: f64,
    },
    /// Exponential with the given mean (heavy-ish tail, the classic
    /// straggler shape).
    Exponential {
        /// Mean delay (seconds).
        mean: f64,
    },
}

impl DelayDistribution {
    /// Draws one delay.
    ///
    /// # Panics
    ///
    /// Panics if the distribution parameters are non-finite or negative
    /// (validated here rather than at construction so the enum stays a
    /// plain data type).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            DelayDistribution::Constant(d) => {
                assert!(d.is_finite() && d >= 0.0, "delay must be non-negative");
                d
            }
            DelayDistribution::Uniform { low, high } => {
                assert!(low >= 0.0 && high > low, "need 0 <= low < high");
                rng.gen_range(low..high)
            }
            DelayDistribution::Exponential { mean } => {
                assert!(mean > 0.0, "mean must be positive");
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -mean * u.ln()
            }
        }
    }
}

/// What happened to one worker in one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StragglerEvent {
    /// The worker computes at its nominal speed.
    Normal,
    /// The worker's result is delayed by the given extra seconds.
    Delayed(f64),
    /// The worker never responds this iteration (full straggler / fault).
    Failed,
}

impl StragglerEvent {
    /// The extra delay in seconds; `0` for normal, `+∞` for failed.
    pub fn extra_delay(self) -> f64 {
        match self {
            StragglerEvent::Normal => 0.0,
            StragglerEvent::Delayed(d) => d,
            StragglerEvent::Failed => f64::INFINITY,
        }
    }

    /// Returns `true` for [`StragglerEvent::Failed`].
    pub fn is_failure(self) -> bool {
        matches!(self, StragglerEvent::Failed)
    }
}

/// Per-iteration straggler injection policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StragglerModel {
    /// No transient stragglers (pure heterogeneity).
    None,
    /// The listed workers get a constant extra delay every iteration —
    /// the Fig. 2 methodology.
    FixedDelay {
        /// Straggling worker indices.
        workers: Vec<usize>,
        /// Extra delay in seconds.
        delay: f64,
    },
    /// The listed workers never respond (fault injection; the `delay = ∞`
    /// limit of Fig. 2).
    Failures {
        /// Failed worker indices.
        workers: Vec<usize>,
    },
    /// Each worker independently straggles with probability `probability`
    /// each iteration, drawing its delay from `delay`.
    Random {
        /// Per-worker, per-iteration straggle probability in `[0,1]`.
        probability: f64,
        /// Delay distribution for straggling workers.
        delay: DelayDistribution,
    },
    /// Exactly `count` distinct workers, chosen uniformly at random each
    /// iteration, straggle with delays from `delay`.
    RandomChoice {
        /// Number of stragglers per iteration.
        count: usize,
        /// Delay distribution for the chosen workers.
        delay: DelayDistribution,
    },
}

impl StragglerModel {
    /// Samples the straggler events for one iteration over `m` workers.
    ///
    /// Out-of-range indices in fixed sets are ignored (allows reusing one
    /// model across clusters of different sizes in sweeps).
    pub fn sample_iteration<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Vec<StragglerEvent> {
        let mut events = vec![StragglerEvent::Normal; m];
        match self {
            StragglerModel::None => {}
            StragglerModel::FixedDelay { workers, delay } => {
                for &w in workers {
                    if w < m {
                        events[w] = StragglerEvent::Delayed(*delay);
                    }
                }
            }
            StragglerModel::Failures { workers } => {
                for &w in workers {
                    if w < m {
                        events[w] = StragglerEvent::Failed;
                    }
                }
            }
            StragglerModel::Random { probability, delay } => {
                assert!((0.0..=1.0).contains(probability), "probability in [0,1]");
                for e in events.iter_mut() {
                    if rng.gen_bool(*probability) {
                        *e = StragglerEvent::Delayed(delay.sample(rng));
                    }
                }
            }
            StragglerModel::RandomChoice { count, delay } => {
                let mut idx: Vec<usize> = (0..m).collect();
                idx.shuffle(rng);
                for &w in idx.iter().take((*count).min(m)) {
                    events[w] = StragglerEvent::Delayed(delay.sample(rng));
                }
            }
        }
        events
    }

    /// Number of workers guaranteed to straggle every iteration (0 for the
    /// random models — used by harnesses to choose a safe `s`).
    pub fn deterministic_straggler_count(&self) -> usize {
        match self {
            StragglerModel::FixedDelay { workers, .. } => workers.len(),
            StragglerModel::Failures { workers } => workers.len(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn none_is_all_normal() {
        let events = StragglerModel::None.sample_iteration(4, &mut rng());
        assert!(events.iter().all(|e| *e == StragglerEvent::Normal));
    }

    #[test]
    fn fixed_delay_targets_listed_workers() {
        let m = StragglerModel::FixedDelay {
            workers: vec![1, 3],
            delay: 2.5,
        };
        let events = m.sample_iteration(4, &mut rng());
        assert_eq!(events[0], StragglerEvent::Normal);
        assert_eq!(events[1], StragglerEvent::Delayed(2.5));
        assert_eq!(events[3], StragglerEvent::Delayed(2.5));
        assert_eq!(m.deterministic_straggler_count(), 2);
    }

    #[test]
    fn fixed_delay_ignores_out_of_range() {
        let m = StragglerModel::FixedDelay {
            workers: vec![9],
            delay: 1.0,
        };
        let events = m.sample_iteration(2, &mut rng());
        assert!(events.iter().all(|e| *e == StragglerEvent::Normal));
    }

    #[test]
    fn failures_are_infinite_delay() {
        let m = StragglerModel::Failures { workers: vec![0] };
        let events = m.sample_iteration(2, &mut rng());
        assert!(events[0].is_failure());
        assert_eq!(events[0].extra_delay(), f64::INFINITY);
        assert!(!events[1].is_failure());
    }

    #[test]
    fn random_probability_zero_and_one() {
        let never = StragglerModel::Random {
            probability: 0.0,
            delay: DelayDistribution::Constant(1.0),
        };
        assert!(never
            .sample_iteration(8, &mut rng())
            .iter()
            .all(|e| *e == StragglerEvent::Normal));
        let always = StragglerModel::Random {
            probability: 1.0,
            delay: DelayDistribution::Constant(1.0),
        };
        assert!(always
            .sample_iteration(8, &mut rng())
            .iter()
            .all(|e| matches!(e, StragglerEvent::Delayed(_))));
    }

    #[test]
    fn random_choice_exact_count() {
        let m = StragglerModel::RandomChoice {
            count: 3,
            delay: DelayDistribution::Constant(0.5),
        };
        for _ in 0..10 {
            let events = m.sample_iteration(8, &mut rng());
            let delayed = events
                .iter()
                .filter(|e| matches!(e, StragglerEvent::Delayed(_)))
                .count();
            assert_eq!(delayed, 3);
        }
    }

    #[test]
    fn random_choice_caps_at_m() {
        let m = StragglerModel::RandomChoice {
            count: 10,
            delay: DelayDistribution::Constant(0.5),
        };
        let events = m.sample_iteration(4, &mut rng());
        assert_eq!(events.len(), 4);
        assert!(events
            .iter()
            .all(|e| matches!(e, StragglerEvent::Delayed(_))));
    }

    #[test]
    fn uniform_delay_in_range() {
        let d = DelayDistribution::Uniform {
            low: 1.0,
            high: 2.0,
        };
        let mut r = rng();
        for _ in 0..100 {
            let x = d.sample(&mut r);
            assert!((1.0..2.0).contains(&x));
        }
    }

    #[test]
    fn exponential_delay_positive_with_roughly_right_mean() {
        let d = DelayDistribution::Exponential { mean: 2.0 };
        let mut r = rng();
        let n = 4000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!(mean > 1.7 && mean < 2.3, "sample mean {mean}");
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn uniform_invalid_range_panics() {
        DelayDistribution::Uniform {
            low: 2.0,
            high: 1.0,
        }
        .sample(&mut rng());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn random_invalid_probability_panics() {
        StragglerModel::Random {
            probability: 1.5,
            delay: DelayDistribution::Constant(1.0),
        }
        .sample_iteration(2, &mut rng());
    }

    #[test]
    fn extra_delay_accessor() {
        assert_eq!(StragglerEvent::Normal.extra_delay(), 0.0);
        assert_eq!(StragglerEvent::Delayed(3.0).extra_delay(), 3.0);
    }
}
