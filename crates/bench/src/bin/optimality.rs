//! Validates **Theorem 5** numerically: the heter-aware scheme's
//! worst-case completion time `T(B)` equals the lower bound `(s+1)k/Σc`
//! whenever Eq. 5 is integral, while cyclic exceeds it by the cluster's
//! imbalance factor. Also reproduces Example 1 of the paper.
//!
//! ```text
//! cargo run --release -p hetgc-bench --bin optimality
//! ```

use hetgc::analysis::{integral_partition_count, optimality_report};
use hetgc::report::render_table;
use hetgc::{cyclic, heter_aware, naive, ClusterSpec};
use hetgc_bench::arg_or;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn report_for(name: &str, throughputs: &[f64], stragglers: usize, rng: &mut StdRng) {
    let m = throughputs.len();
    let Some(k) = integral_partition_count(throughputs, stragglers) else {
        println!("{name}: no integral k in [m, 8m] — skipped\n");
        return;
    };
    let het = heter_aware(throughputs, k, stragglers, rng).expect("heter-aware");
    let cyc = cyclic(m, stragglers, rng).expect("cyclic");
    let nai = naive(m).expect("naive");
    let rows = optimality_report(
        &[
            ("heter-aware".to_owned(), &het),
            ("cyclic".to_owned(), &cyc),
            ("naive".to_owned(), &nai),
        ],
        throughputs,
    )
    .expect("report");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.4}", r.worst_case),
                format!("{:.4}", r.bound),
                format!("{:.3}", r.ratio),
                format!("{:.2}", r.balance),
            ]
        })
        .collect();
    println!(
        "{name} (m = {m}, s = {stragglers}, k = {k}):\n{}",
        render_table(
            &[
                "scheme",
                "T(B)",
                "bound (s+1)k/Σc",
                "ratio",
                "balance max/min"
            ],
            &table
        )
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_or(&args, "--seed", 7u64);
    let random_clusters = arg_or(&args, "--random", 3usize);
    let mut rng = StdRng::seed_from_u64(seed);

    println!("Theorem 5 validation: T(B) vs the lower bound (s+1)k/Σc\n");

    // Example 1 of the paper.
    report_for("paper Example 1", &[1.0, 2.0, 3.0, 4.0, 4.0], 1, &mut rng);

    // Cluster-A with vCPU-proportional throughputs.
    let a = ClusterSpec::cluster_a();
    report_for("Cluster-A", &a.throughputs(), 1, &mut rng);
    report_for("Cluster-A", &a.throughputs(), 2, &mut rng);

    // Random heterogeneous clusters.
    for i in 0..random_clusters {
        let m = rng.gen_range(4..8);
        let c: Vec<f64> = (0..m).map(|_| f64::from(rng.gen_range(1u32..5))).collect();
        report_for(&format!("random cluster #{i}"), &c, 1, &mut rng);
    }
}
