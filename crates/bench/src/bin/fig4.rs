//! Regenerates **Fig. 4** of the paper: training-loss curves over
//! simulated wall-clock on Cluster-C — the four BSP schemes plus the SSP
//! asynchronous baseline, all training the same MLP on synthetic
//! CIFAR-like data.
//!
//! Expected shape (paper §VI-A-2): the coded BSP schemes share one
//! per-iteration trajectory (decoding is exact) and differ only in speed,
//! with group-based ≥ heter-aware > cyclic ≥ naive; SSP converges worst —
//! its updates are stale and arrive at unbalanced per-worker rates.
//!
//! ```text
//! cargo run --release -p hetgc-bench --bin fig4
//! ```

use hetgc::experiment::{fig4, Fig4Config};
use hetgc::report::{render_curves, render_table};
use hetgc_bench::arg_or;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iterations = arg_or(&args, "--iterations", 60usize);
    let samples = arg_or(&args, "--samples", 3_200usize);
    let dim = arg_or(&args, "--dim", 64usize);
    let seed = arg_or(&args, "--seed", 2021u64);

    let cfg = Fig4Config {
        iterations,
        samples,
        dim,
        seed,
        ..Fig4Config::default()
    };
    println!(
        "Fig. 4: training loss vs simulated time on {} \
         (MLP {}-{}-{} on {} synthetic CIFAR-like samples, SSP staleness {})\n",
        cfg.cluster.name(),
        cfg.dim,
        cfg.hidden,
        cfg.classes,
        cfg.samples,
        cfg.ssp_staleness
    );

    let curves = fig4(&cfg).expect("fig4 experiment");

    // Summary table: time to finish + final loss per scheme.
    let headers = ["scheme", "updates", "sim duration (s)", "final loss"];
    let rows: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                c.points.len().to_string(),
                format!("{:.2}", c.duration()),
                c.final_loss()
                    .map(|l| format!("{l:.4}"))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));

    // Loss-at-common-deadline comparison (the visually obvious part of the
    // paper's figure): at the time the slowest scheme finishes half its
    // run, where is everyone?
    let deadline = curves
        .iter()
        .map(|c| c.duration())
        .fold(f64::INFINITY, f64::min)
        .max(1e-9);
    let rows: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            let at: Option<f64> = c
                .points
                .iter()
                .take_while(|&&(t, _)| t <= deadline)
                .last()
                .map(|&(_, l)| l);
            vec![
                c.label.clone(),
                at.map(|l| format!("{l:.4}"))
                    .unwrap_or_else(|| "(no update yet)".into()),
            ]
        })
        .collect();
    println!(
        "loss reached by the common deadline t = {deadline:.2}s:\n{}",
        render_table(&["scheme", "loss"], &rows)
    );

    let series: Vec<(String, Vec<(f64, f64)>)> = curves
        .iter()
        .map(|c| (c.label.clone(), c.points.clone()))
        .collect();
    println!("{}", render_curves(&series, 64));
}
