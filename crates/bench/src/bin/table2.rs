//! Regenerates **Table II** of the paper: the cluster configurations used
//! throughout the evaluation, plus derived quantities (total throughput,
//! heterogeneity ratio) that explain the figures.
//!
//! ```text
//! cargo run --release -p hetgc-bench --bin table2
//! ```

use hetgc::report::render_table;
use hetgc::ClusterSpec;

fn main() {
    println!("Table II: cluster configurations (QingCloud vCPU mix, reproduced verbatim)\n");

    let clusters = ClusterSpec::table2();
    let vcpu_sizes = [2u32, 4, 8, 12, 16];

    let mut rows = Vec::new();
    for size in vcpu_sizes {
        let mut row = vec![format!("{size}-vCPUs")];
        for c in &clusters {
            let count = c.workers().iter().filter(|w| w.vcpus() == size).count();
            row.push(count.to_string());
        }
        rows.push(row);
    }
    rows.push(
        std::iter::once("total workers".to_owned())
            .chain(clusters.iter().map(|c| c.len().to_string()))
            .collect(),
    );
    rows.push(
        std::iter::once("sum throughput (units/s)".to_owned())
            .chain(
                clusters
                    .iter()
                    .map(|c| format!("{:.0}", c.total_throughput())),
            )
            .collect(),
    );
    rows.push(
        std::iter::once("heterogeneity (max/min)".to_owned())
            .chain(
                clusters
                    .iter()
                    .map(|c| format!("{:.1}x", c.heterogeneity())),
            )
            .collect(),
    );

    let headers = [
        "number of vCPUs",
        "Cluster-A",
        "Cluster-B",
        "Cluster-C",
        "Cluster-D",
    ];
    println!("{}", render_table(&headers, &rows));
    println!(
        "note: the paper's prose says clusters range 8..48 workers but its Table II\n\
         rows for Cluster-D sum to 58; the table is reproduced verbatim (DESIGN.md)."
    );
}
