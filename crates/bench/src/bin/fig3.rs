//! Regenerates **Fig. 3** of the paper: average time per iteration on
//! Clusters B, C and D under random transient stragglers, for all four
//! schemes.
//!
//! Expected shape (paper §VI-A-2): heter-aware and group-based win on
//! every cluster; cyclic can be *worse than naive* because it doubles the
//! (uniform) load of already-slow workers.
//!
//! ```text
//! cargo run --release -p hetgc-bench --bin fig3
//! ```

use hetgc::experiment::{fig3, Fig3Config};
use hetgc::report::{fmt_opt_secs, render_table};
use hetgc_bench::arg_or;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iterations = arg_or(&args, "--iterations", 50usize);
    let stragglers = arg_or(&args, "--stragglers", 1usize);
    let noise = arg_or(&args, "--noise", 0.10f64);
    let seed = arg_or(&args, "--seed", 2020u64);

    let cfg = Fig3Config {
        iterations,
        stragglers,
        estimation_noise: noise,
        seed,
        ..Fig3Config::default()
    };
    println!(
        "Fig. 3: avg time/iteration under transient stragglers \
         (s = {stragglers}, estimation noise {noise:.0}%, {iterations} iters)\n",
        noise = 100.0 * noise
    );

    let rows = fig3(&cfg).expect("fig3 experiment");
    let headers = ["cluster", "naive", "cyclic", "heter-aware", "group-based"];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let mut cells = vec![row.cluster.clone()];
            for (_, t) in &row.avg_times {
                cells.push(fmt_opt_secs(*t));
            }
            cells
        })
        .collect();
    println!("{}", render_table(&headers, &table));
}
