//! Ablations over the design choices DESIGN.md calls out — three studies
//! beyond the paper's own figures:
//!
//! 1. **Communication overlap** (the paper's \[42\] suggestion for its ~50 %
//!    resource-usage ceiling): sweep the number of pipelined gradient
//!    chunks and watch usage climb.
//! 2. **Adaptive re-estimation** (our extension): static vs re-estimated
//!    coding under worker-speed drift — including the case where the
//!    static code wins because the drift fits the straggler budget.
//! 3. **Replication factor** (approximate coding): the exact-tolerance /
//!    load tradeoff of r ∈ {1..s+1} replicas, with the residual bound of
//!    the approximate decoder.
//!
//! ```text
//! cargo run --release -p hetgc-bench --bin ablation
//! ```

use hetgc::adaptive::{compare_static_vs_adaptive, AdaptiveConfig};
use hetgc::report::{fmt_percent, render_table};
use hetgc::RateDrift;
use hetgc::{
    approximate_decode, simulate_bsp_iteration, under_replicated, BspIterationConfig, ClusterSpec,
    NetworkModel, RunMetrics, SchemeBuilder, SchemeKind, StragglerModel,
};
use hetgc_bench::arg_or;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn overlap_study(iterations: usize, seed: u64) {
    println!("── ablation 1: communication/computation overlap (Poseidon-style [42]) ──\n");
    let cluster = ClusterSpec::cluster_a();
    let rates = cluster.throughputs();
    let mut rng = StdRng::seed_from_u64(seed);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut rng)
        .expect("scheme");
    let k = scheme.code.partitions();

    let mut rows = Vec::new();
    for chunks in [1usize, 2, 4, 8, 16] {
        let cfg = BspIterationConfig::new(&rates)
            .work_per_partition(48.0 / k as f64)
            .network(NetworkModel::lan())
            .payload_bytes(2.4e8) // AlexNet-scale gradient
            .compute_jitter(0.05)
            .overlap_chunks(chunks);
        let mut metrics = RunMetrics::new();
        for _ in 0..iterations {
            let events = StragglerModel::None.sample_iteration(cluster.len(), &mut rng);
            let out =
                simulate_bsp_iteration(&scheme.code, &cfg, &events, &mut rng).expect("simulate");
            metrics.record(&out);
        }
        rows.push(vec![
            chunks.to_string(),
            format!("{:.3}", metrics.avg_iteration_time().unwrap_or(f64::NAN)),
            fmt_percent(metrics.resource_usage().ratio()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["pipelined chunks", "avg time/iter (s)", "resource usage"],
            &rows
        )
    );
}

fn adaptive_study(seed: u64) {
    println!("── ablation 2: adaptive re-estimation under worker-speed drift ──\n");
    let cluster = ClusterSpec::from_vcpu_rows("drift", &[(1, 2), (1, 3), (1, 4), (1, 5)], 10.0)
        .expect("cluster");
    let scenarios: Vec<(&str, RateDrift)> = vec![
        ("no drift", RateDrift::None),
        (
            "1 worker -70% (fits s=1 budget)",
            RateDrift::StepChange {
                at: 15,
                factors: vec![1.0, 1.0, 1.0, 0.3],
            },
        ),
        (
            "2 workers -70% (exceeds budget)",
            RateDrift::StepChange {
                at: 15,
                factors: vec![1.0, 1.0, 0.3, 0.3],
            },
        ),
        (
            "wave ±40%",
            RateDrift::Wave {
                period: 12.0,
                amplitude: 0.4,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, drift) in scenarios {
        let cfg = AdaptiveConfig {
            iterations: 60,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let (static_run, adaptive_run) =
            compare_static_vs_adaptive(&cluster, &drift, &cfg, &mut rng).expect("runs");
        let ts = static_run.metrics.avg_iteration_time().unwrap_or(f64::NAN);
        let ta = adaptive_run
            .metrics
            .avg_iteration_time()
            .unwrap_or(f64::NAN);
        rows.push(vec![
            label.to_owned(),
            format!("{ts:.3}"),
            format!("{ta:.3}"),
            format!("{:.2}x", ts / ta),
            adaptive_run.rebuilds.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "drift scenario",
                "static (s)",
                "adaptive (s)",
                "speedup",
                "rebuilds"
            ],
            &rows
        )
    );
    println!(
        "note: when the drift fits the straggler budget the static code absorbs it\n\
         for free (the slowed worker just becomes 'the straggler'), so adaptive\n\
         re-balancing only pays off once drift exceeds s workers.\n"
    );
}

fn replication_study(seed: u64) {
    println!("── ablation 3: replication factor r (exact ↔ approximate tradeoff) ──\n");
    let throughputs = [1.0, 2.0, 3.0, 4.0, 4.0];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for r in [1usize, 2, 3] {
        let code = under_replicated(&throughputs, 7, r, &mut rng).expect("construct");
        let total_load: usize = (0..5).map(|w| code.load_of(w)).sum();
        // Residual when one more worker than the design tolerates is lost:
        // drop the r slowest-loaded workers.
        let survivors: Vec<usize> = (r..5).collect();
        let approx = approximate_decode(&code, &survivors).expect("decode");
        rows.push(vec![
            r.to_string(),
            (r - 1).to_string(),
            total_load.to_string(),
            format!("{:.4}", approx.residual),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "replicas r",
                "exact tolerance",
                "total partition copies",
                "residual @ r stragglers"
            ],
            &rows
        )
    );
    println!(
        "r = s+1 restores the paper's exact scheme; smaller r trades gradient\n\
         exactness (bounded by the residual) for proportionally less compute."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iterations = arg_or(&args, "--iterations", 30usize);
    let seed = arg_or(&args, "--seed", 4242u64);
    overlap_study(iterations, seed);
    adaptive_study(seed);
    replication_study(seed);
}
