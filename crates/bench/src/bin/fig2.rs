//! Regenerates **Fig. 2** of the paper: average time per iteration on
//! Cluster-A as the injected straggler delay grows, for all four schemes,
//! ending with the fault case (delay = ∞).
//!
//! Expected shape (paper §VI-A-1): naive grows with delay and cannot run
//! under faults; cyclic is delay-insensitive but capped by its slowest
//! needed worker; heter-aware and group-based stay flat at the balanced
//! optimum — roughly 3× faster than cyclic in the fault case.
//!
//! ```text
//! cargo run --release -p hetgc-bench --bin fig2 -- --stragglers 1
//! cargo run --release -p hetgc-bench --bin fig2 -- --stragglers 2   # Fig. 2b
//! ```

use hetgc::analysis::speedup;
use hetgc::experiment::{fig2, Fig2Config};
use hetgc::report::{fmt_opt_secs, render_table};
use hetgc::SchemeKind;
use hetgc_bench::arg_or;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stragglers = arg_or(&args, "--stragglers", 1usize);
    let iterations = arg_or(&args, "--iterations", 30usize);
    let seed = arg_or(&args, "--seed", 2019u64);

    let cfg = Fig2Config {
        stragglers,
        iterations,
        seed,
        ..Fig2Config::default()
    };
    println!(
        "Fig. 2{}: avg time/iteration vs injected delay on {} (s = {stragglers}, {} iters/point)\n",
        if stragglers == 1 { "a" } else { "b" },
        cfg.cluster.name(),
        cfg.iterations
    );

    let rows = fig2(&cfg).expect("fig2 experiment");
    let headers = ["delay (s)", "naive", "cyclic", "heter-aware", "group-based"];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let mut cells = vec![if row.delay.is_infinite() {
                "fault".to_owned()
            } else {
                format!("{:.1}", row.delay)
            }];
            for (_, t) in &row.avg_times {
                cells.push(fmt_opt_secs(*t));
            }
            cells
        })
        .collect();
    println!("{}", render_table(&headers, &table));

    // The paper's headline: heter-aware vs cyclic at the fault point.
    if let Some(fault_row) = rows.iter().find(|r| r.delay.is_infinite()) {
        let get = |kind: SchemeKind| {
            fault_row
                .avg_times
                .iter()
                .find(|(k, _)| *k == kind)
                .and_then(|(_, t)| *t)
        };
        if let (Some(cyc), Some(het)) = (get(SchemeKind::Cyclic), get(SchemeKind::HeterAware)) {
            if let Some(s) = speedup(cyc, het) {
                println!("fault-case speedup of heter-aware over cyclic: {s:.2}x");
            }
        }
    }
}
