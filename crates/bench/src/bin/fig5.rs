//! Regenerates **Fig. 5** of the paper: computing-resource usage
//! (`Σ compute time / Σ total worker time`) of each scheme.
//!
//! Expected shape (paper §VI-A-2): naive is the worst (fast workers idle
//! waiting for stragglers and the slowest node); cyclic improves by
//! discarding stragglers but keeps the load imbalance; heter-aware and
//! group-based are best, capped around ~50 % by communication overhead.
//!
//! ```text
//! cargo run --release -p hetgc-bench --bin fig5
//! ```

use hetgc::experiment::{fig5, Fig5Config};
use hetgc::report::{fmt_percent, render_table};
use hetgc::ClusterSpec;
use hetgc_bench::arg_or;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iterations = arg_or(&args, "--iterations", 50usize);
    let seed = arg_or(&args, "--seed", 2022u64);

    println!("Fig. 5: computing resource usage per scheme\n");
    let clusters = [ClusterSpec::cluster_a(), ClusterSpec::cluster_b()];
    let headers = ["cluster", "naive", "cyclic", "heter-aware", "group-based"];
    let mut table = Vec::new();
    for cluster in clusters {
        let cfg = Fig5Config {
            cluster: cluster.clone(),
            iterations,
            seed,
            ..Fig5Config::default()
        };
        let rows = fig5(&cfg).expect("fig5 experiment");
        let mut cells = vec![cluster.name().to_owned()];
        for row in rows {
            cells.push(fmt_percent(row.usage));
        }
        table.push(cells);
    }
    println!("{}", render_table(&headers, &table));
    println!(
        "(usage is capped well below 100% by communication overhead — the paper\n\
         attributes its ~50% ceiling to the same cause and cites layer-wise\n\
         overlap [42] as the known fix)"
    );
}
