//! # hetgc-bench
//!
//! The benchmark harness of the hetgc workspace:
//!
//! * **Figure/table binaries** (`src/bin/`): `table2`, `fig2`, `fig3`,
//!   `fig4`, `fig5`, `optimality` — each regenerates one artefact of the
//!   paper's evaluation section. Run e.g.
//!   `cargo run --release -p hetgc-bench --bin fig2 -- --stragglers 1`.
//! * **Criterion micro-benchmarks** (`benches/`): construction cost of the
//!   coding matrices, decode-vector solve cost (the paper's `O(mk²)`
//!   realtime-decoding claim), group search, simulator throughput, and the
//!   linearity of gradient cost in partition size (the load-balancing
//!   premise of Eq. 5).
//!
//! This library target only hosts the tiny CLI-argument helper shared by
//! the binaries.

/// Parses `--key value` style arguments: returns the value following the
/// given flag, parsed, or the default. Malformed values fall back to the
/// default rather than aborting a long benchmark run.
pub fn arg_or<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Returns `true` if the bare flag is present.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_present_flag() {
        let a = args(&["--stragglers", "2", "--quick"]);
        assert_eq!(arg_or(&a, "--stragglers", 1usize), 2);
        assert!(has_flag(&a, "--quick"));
    }

    #[test]
    fn falls_back_to_default() {
        let a = args(&["--other", "x"]);
        assert_eq!(arg_or(&a, "--stragglers", 1usize), 1);
        assert!(!has_flag(&a, "--quick"));
    }

    #[test]
    fn malformed_value_uses_default() {
        let a = args(&["--iters", "abc"]);
        assert_eq!(arg_or(&a, "--iters", 7usize), 7);
    }

    #[test]
    fn flag_at_end_without_value() {
        let a = args(&["--iters"]);
        assert_eq!(arg_or(&a, "--iters", 7usize), 7);
    }
}
