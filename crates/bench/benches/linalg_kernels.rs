//! The chunked linalg kernels against naive scalar loops, at three
//! model sizes (d = 1 k, 64 k, 1 M):
//!
//! * `linalg/axpy/*`         — `y += alpha * x`, the decode inner loop;
//! * `linalg/dot/*`          — reduction with `LANES` partial
//!   accumulators vs a single serial accumulator;
//! * `linalg/block_decode/*` — the whole-round plan-matrix × arrival-block
//!   product vs the equivalent per-row scalar sweep.
//!
//! The scalar arms are written inline (plain indexed loops) so they
//! stay a faithful "what the code did before" baseline even as
//! `hetgc_linalg` evolves. The CI `bench-smoke` job runs this bench
//! with `--test` on every PR.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hetgc_linalg::kernels;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIMS: [usize; 3] = [1_024, 65_536, 1_048_576];

fn vectors(d: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let y: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect();
    (x, y)
}

fn bench_axpy(c: &mut Criterion) {
    for d in DIMS {
        let (x, base) = vectors(d, 7);
        let mut y = base.clone();
        let mut group = c.benchmark_group(format!("linalg/axpy/d{d}"));
        group.bench_function("scalar", |b| {
            b.iter(|| {
                for (o, &v) in y.iter_mut().zip(&x) {
                    *o += 1.5 * v;
                }
                black_box(y[0])
            })
        });
        group.bench_function("chunked", |b| {
            b.iter(|| {
                kernels::axpy(1.5, &x, &mut y);
                black_box(y[0])
            })
        });
        group.finish();
    }
}

fn bench_dot(c: &mut Criterion) {
    for d in DIMS {
        let (x, y) = vectors(d, 11);
        let mut group = c.benchmark_group(format!("linalg/dot/d{d}"));
        group.bench_function("scalar", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for (&a, &b) in x.iter().zip(&y) {
                    acc += a * b;
                }
                black_box(acc)
            })
        });
        group.bench_function("chunked", |b| b.iter(|| black_box(kernels::dot(&x, &y))));
        group.finish();
    }
}

fn bench_block_decode(c: &mut Criterion) {
    const ROWS: usize = 7; // survivors of an m = 8, s = 1 round
    for d in DIMS {
        let mut rng = StdRng::seed_from_u64(13);
        let rows: Vec<Vec<f64>> = (0..ROWS)
            .map(|_| (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect())
            .collect();
        let coeffs: Vec<f64> = (0..ROWS).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut out = vec![0.0; d];
        let mut group = c.benchmark_group(format!("linalg/block_decode/d{d}"));
        group.bench_function("per_row_scalar", |b| {
            b.iter(|| {
                out.fill(0.0);
                for (row, &coef) in rows.iter().zip(&coeffs) {
                    for (o, &v) in out.iter_mut().zip(row) {
                        *o += coef * v;
                    }
                }
                black_box(out[0])
            })
        });
        group.bench_function("blocked", |b| {
            b.iter(|| {
                kernels::block_decode(&coeffs, &|i| rows[i].as_slice(), &mut out);
                black_box(out[0])
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_axpy, bench_dot, bench_block_decode);
criterion_main!(benches);
