//! Per-iteration decoder setup cost: constructing a fresh `OnlineDecoder`
//! every round (the pre-codec idiom of every trainer in this workspace)
//! versus resetting one reusable `CodecSession`.
//!
//! The workload is one full master collect round on Cluster-A-sized codes
//! (m = 8, the paper's Table II Cluster-A, plus larger powers of two):
//! arrivals stream in a fixed order and the round ends at the earliest
//! decodable prefix — exactly what `train_bsp_sim`, the experiment
//! drivers and the threaded runtime do once per training iteration.

#![allow(deprecated)] // the point of this bench is to measure the old path

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetgc::{
    group_based, heter_aware, ClusterSpec, CodingMatrix, CompiledCodec, GradientCodec, GroupCodec,
    OnlineDecoder,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cluster-A's throughput shape (Table II: 2+2+3+1 nodes, 2–12 vCPUs),
/// extended cyclically for larger m.
fn cluster_a_like(m: usize) -> CodingMatrix {
    let base = ClusterSpec::cluster_a().throughputs();
    let throughputs: Vec<f64> = (0..m).map(|i| base[i % base.len()]).collect();
    let mut rng = StdRng::seed_from_u64(7);
    heter_aware(&throughputs, 2 * m, 1, &mut rng).expect("construct")
}

fn run_round_fresh(code: &CodingMatrix, order: &[usize]) {
    let mut dec = OnlineDecoder::new(code);
    for &w in order {
        if dec.push(w).expect("valid push").is_some() {
            return;
        }
    }
    panic!("never decoded");
}

fn bench_fresh_decoder_per_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_session/fresh_online_decoder");
    for m in [8usize, 16, 32] {
        let code = cluster_a_like(m);
        let order: Vec<usize> = (0..m).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &code, |b, code| {
            b.iter(|| run_round_fresh(code, &order));
        });
    }
    group.finish();
}

fn bench_reused_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_session/reused_session_reset");
    for m in [8usize, 16, 32] {
        let codec = CompiledCodec::new(cluster_a_like(m));
        let order: Vec<usize> = (0..m).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &codec, |b, codec| {
            let mut session = codec.session();
            b.iter(|| {
                session.reset();
                for &w in &order {
                    if session.push(w).expect("valid push").is_some() {
                        return;
                    }
                }
                panic!("never decoded");
            });
        });
    }
    group.finish();
}

/// The group fast path: a homogeneous cluster whose group-based code has
/// intact groups, arrivals ordered so one group completes first. The
/// generic session pays a row elimination plus a spanning check per push
/// and a densification at decode; the group session counts arrivals and
/// clones a precompiled indicator plan.
fn bench_group_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_session/group_fast_path");
    for m in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(9);
        let strategy = group_based(&vec![1.0; m], m, 1, &mut rng).expect("construct");
        assert!(!strategy.groups().is_empty(), "m={m} must admit groups");
        // Arrival order: the smallest group's workers first, then the rest.
        let codec = GroupCodec::new(strategy.clone()).expect("compile");
        let first_group = codec.groups()[0].workers().to_vec();
        let mut order = first_group.clone();
        order.extend((0..m).filter(|w| !first_group.contains(w)));

        let generic = CompiledCodec::new(strategy.code().clone());
        group.bench_with_input(
            BenchmarkId::new("generic_session", m),
            &generic,
            |b, codec| {
                let mut session = codec.session();
                b.iter(|| {
                    session.reset();
                    for &w in &order {
                        if session.push(w).expect("valid push").is_some() {
                            return;
                        }
                    }
                    panic!("never decoded");
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("group_session", m), &codec, |b, codec| {
            let mut session = codec.session();
            b.iter(|| {
                session.reset();
                for &w in &order {
                    if session.push(w).expect("valid push").is_some() {
                        return;
                    }
                }
                panic!("never decoded");
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fresh_decoder_per_iteration,
    bench_reused_session,
    bench_group_fast_path
);
criterion_main!(benches);
