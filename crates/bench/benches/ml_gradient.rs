//! Gradient-cost linearity: the load-balancing premise of Eq. 5 is that
//! "the computing complexity of each task is proportional to its number of
//! samples" (§II). This bench verifies the premise holds for our models:
//! doubling the sample range should roughly double the gradient time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetgc::{synthetic, LinearRegression, Mlp, Model, SoftmaxRegression};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mlp_gradient(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(21);
    let data = synthetic::image_like(1600, 64, 10, &mut rng);
    let model = Mlp::new(64, 32, 10);
    let params = model.init_params(&mut rng);
    let mut group = c.benchmark_group("ml/mlp_gradient");
    for samples in [200usize, 400, 800, 1600] {
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &n| {
            b.iter(|| model.gradient(&params, &data, (0, n)));
        });
    }
    group.finish();
}

fn bench_softmax_gradient(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(22);
    let data = synthetic::gaussian_blobs(2000, 16, 4, 3.0, &mut rng);
    let model = SoftmaxRegression::new(16, 4);
    let params = model.init_params(&mut rng);
    let mut group = c.benchmark_group("ml/softmax_gradient");
    for samples in [500usize, 1000, 2000] {
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &n| {
            b.iter(|| model.gradient(&params, &data, (0, n)));
        });
    }
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    // Worker-side encoding g̃ = Σ b_j·g_j over a realistic gradient size.
    let mut rng = StdRng::seed_from_u64(23);
    let data = synthetic::linear_regression(1000, 128, 0.1, &mut rng);
    let model = LinearRegression::new(128);
    let params = model.init_params(&mut rng);
    let throughputs = [1.0, 2.0, 3.0, 4.0, 4.0, 2.0];
    let code = hetgc::heter_aware(&throughputs, 8, 1, &mut rng).expect("construct");
    let ranges: Vec<(usize, usize)> = hetgc::PartitionAssignment::even(1000, 8)
        .expect("partition")
        .iter()
        .collect();
    let partials = hetgc_ml::partial_gradients(&model, &params, &data, &ranges);
    c.bench_function("ml/encode_worker_gradient", |b| {
        b.iter(|| {
            for w in 0..code.workers() {
                code.encode(w, &partials).expect("encode");
            }
        });
    });
}

criterion_group!(
    benches,
    bench_mlp_gradient,
    bench_softmax_gradient,
    bench_encode
);
criterion_main!(benches);
