//! End-to-end multi-tenant throughput: a batch of training jobs over one
//! shared worker pool, scheduled concurrently versus run back to back.
//!
//! The claim this bench pins: with sleep-dominated rounds (workers that
//! model real compute/network latency), time-slicing the pool overlaps
//! the tenants' waiting, so the scheduled batch's `jobs/sec` beats the
//! sequential baseline — the scheduler's whole reason to exist. The
//! per-batch shared-plan reuse (solves ≪ lookups) rides along for free
//! and is asserted by `crates/sched/tests/scheduler.rs`.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hetgc_runtime::WorkerBehavior;
use hetgc_sched::{JobScheduler, JobSpec, SharedWorkerPool};

const ROUNDS: usize = 3;
const JOBS: usize = 4;

/// A 4-worker fleet with millisecond-scale rounds and one consistent
/// straggler — small enough to keep the bench quick, slow enough that
/// overlap (not raw compute) dominates the scheduled batch.
fn delay_pool() -> SharedWorkerPool {
    let fast = WorkerBehavior::nominal().with_delay(Duration::from_millis(2));
    let slow = WorkerBehavior::nominal().with_delay(Duration::from_millis(6));
    SharedWorkerPool::new(vec![1.0; 4])
        .with_behaviors(vec![fast.clone(), fast.clone(), fast, slow])
        .with_max_concurrent(JOBS)
}

fn batch(pool: SharedWorkerPool) -> JobScheduler {
    let mut sched = JobScheduler::new(pool);
    for i in 0..JOBS {
        // Equal seeds: identical codes, one decode-plan namespace.
        sched = sched.submit(
            JobSpec::new(format!("bench-job-{i}"))
                .with_rounds(ROUNDS)
                .with_seed(11),
        );
    }
    sched
}

fn bench_jobs_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/jobs_throughput");
    for (label, concurrent) in [("scheduled", true), ("sequential", false)] {
        let sched = batch(delay_pool());
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &concurrent,
            |b, &conc| {
                b.iter(|| {
                    let report = if conc {
                        sched.run().expect("scheduled batch")
                    } else {
                        sched.run_sequential().expect("sequential batch")
                    };
                    assert_eq!(report.outcomes.len(), JOBS);
                    black_box(report.jobs_per_sec())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_jobs_throughput);
criterion_main!(benches);
