//! The cost of the observability layer on the decode hot loop.
//!
//! Three variants of the identical master collect round (session reset,
//! streamed arrivals, plan application over a reused gradient block):
//!
//! * `baseline` — no instrumentation at all;
//! * `metrics_disabled` — counter/histogram/recorder handles attached
//!   but switched off: every record call is one relaxed atomic load;
//! * `metrics_enabled` — the full stack recording (atomics + the
//!   preallocated flight-recorder ring).
//!
//! Besides the criterion medians, `overhead_guard` measures
//! baseline vs disabled directly (interleaved min-of-N) and **panics**
//! when the disabled path costs more than 2% — the contract that makes
//! shipping the instrumentation compiled-in acceptable.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use hetgc::{
    heter_aware, partial_gradients_into, synthetic, ClusterSpec, CompiledCodec, GradientBlock,
    GradientCodec, LinearRegression, Model, PartitionAssignment,
};
use hetgc_obs::{Counter, Histogram, MetricsRegistry, Phase, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: usize = 8;
const DIM: usize = 6;
const SAMPLES: usize = 96;

struct Workload {
    codec: CompiledCodec,
    model: LinearRegression,
    params: Vec<f64>,
    data: hetgc::Dataset,
    ranges: Vec<(usize, usize)>,
    order: Vec<usize>,
}

fn workload() -> Workload {
    let base = ClusterSpec::cluster_a().throughputs();
    let throughputs: Vec<f64> = (0..M).map(|i| base[i % base.len()]).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let code = heter_aware(&throughputs, 2 * M, 1, &mut rng).expect("construct");
    let codec = CompiledCodec::new(code);
    let model = LinearRegression::new(DIM);
    let params = model.init_params(&mut rng);
    let data = synthetic::linear_regression(SAMPLES, DIM, 0.02, &mut rng);
    let assignment = PartitionAssignment::even(data.len(), codec.partitions()).expect("assignment");
    let ranges: Vec<(usize, usize)> = assignment.iter().collect();
    // One consistent straggler (the last worker never arrives).
    let order: Vec<usize> = (0..M - 1).collect();
    Workload {
        codec,
        model,
        params,
        data,
        ranges,
        order,
    }
}

/// Reused round state, as the engines hold it.
struct RoundState {
    session: hetgc::CodecSession,
    partials: GradientBlock,
    arrivals: GradientBlock,
    decoded: Vec<f64>,
}

impl RoundState {
    fn new(w: &Workload) -> Self {
        let d = w.model.num_params();
        RoundState {
            session: w.codec.session(),
            partials: GradientBlock::new(w.codec.partitions(), d),
            arrivals: GradientBlock::new(w.codec.workers(), d),
            decoded: vec![0.0; d],
        }
    }
}

/// Optional instrumentation for one round — `None` fields mean baseline.
struct Instruments {
    recorder: Option<Recorder>,
    rounds: Option<Counter>,
    round_seconds: Option<Histogram>,
}

impl Instruments {
    fn none() -> Self {
        Instruments {
            recorder: None,
            rounds: None,
            round_seconds: None,
        }
    }

    fn from_registry(registry: &MetricsRegistry, recorder: Recorder) -> Self {
        Instruments {
            recorder: Some(recorder),
            rounds: Some(registry.counter("bench_rounds_total", "rounds", &[])),
            round_seconds: Some(registry.histogram("bench_round_seconds", "latency", &[])),
        }
    }
}

fn round(w: &Workload, s: &mut RoundState, obs: &Instruments) {
    // Every variant times the round — the drivers compute elapsed for
    // their own round log whether or not metrics are attached, so the
    // clock reads are part of the baseline, not of the overhead.
    let started = Instant::now();
    s.session.reset();
    for &worker in &w.order {
        if let Some(rec) = &obs.recorder {
            rec.instant(Phase::Arrival, (worker + 1) as u64);
        }
        if s.session.push_arrival(worker).expect("valid push") {
            break;
        }
    }
    let plan = s.session.decoded_plan().expect("decodable prefix");
    partial_gradients_into(&w.model, &w.params, &w.data, &w.ranges, &mut s.partials);
    let decode_span = obs.recorder.as_ref().map(|r| r.span(Phase::Decode));
    for (worker, _) in plan.iter() {
        w.codec
            .encode_into(worker, &s.partials, s.arrivals.row_mut(worker))
            .expect("encode");
    }
    plan.apply_block_into(&s.arrivals, &mut s.decoded)
        .expect("apply");
    drop(decode_span);
    let elapsed = std::hint::black_box(started.elapsed().as_secs_f64());
    if let Some(c) = &obs.rounds {
        c.inc();
    }
    if let Some(h) = &obs.round_seconds {
        h.observe(elapsed);
    }
}

fn bench_baseline(c: &mut Criterion) {
    let w = workload();
    let mut s = RoundState::new(&w);
    let obs = Instruments::none();
    c.bench_function("metrics_overhead/baseline", |b| {
        b.iter(|| round(&w, &mut s, &obs));
    });
}

fn bench_disabled(c: &mut Criterion) {
    let w = workload();
    let mut s = RoundState::new(&w);
    let registry = MetricsRegistry::disabled();
    let recorder = Recorder::new(1024);
    recorder.set_enabled(false);
    let obs = Instruments::from_registry(&registry, recorder);
    c.bench_function("metrics_overhead/metrics_disabled", |b| {
        b.iter(|| round(&w, &mut s, &obs));
    });
}

fn bench_enabled(c: &mut Criterion) {
    let w = workload();
    let mut s = RoundState::new(&w);
    let registry = MetricsRegistry::new();
    let recorder = Recorder::new(1024);
    let obs = Instruments::from_registry(&registry, recorder);
    c.bench_function("metrics_overhead/metrics_enabled", |b| {
        b.iter(|| round(&w, &mut s, &obs));
    });
}

/// The hard gate: disabled-path instrumentation must cost < 2% on the
/// decode hot loop. Measured as interleaved min-of-N batches so machine
/// drift hits both sides equally; min (not mean) discards scheduler
/// noise. Panicking here fails the bench-smoke CI arm.
fn overhead_guard(_c: &mut Criterion) {
    const BATCH: usize = 512;
    const REPS: usize = 21;
    let w = workload();
    let mut base_state = RoundState::new(&w);
    let baseline = Instruments::none();
    let mut dis_state = RoundState::new(&w);
    let registry = MetricsRegistry::disabled();
    let recorder = Recorder::new(1024);
    recorder.set_enabled(false);
    let disabled = Instruments::from_registry(&registry, recorder);

    // Warm both states to steady capacity before timing anything.
    for _ in 0..64 {
        round(&w, &mut base_state, &baseline);
        round(&w, &mut dis_state, &disabled);
    }
    let mut best_base = f64::INFINITY;
    let mut best_dis = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        for _ in 0..BATCH {
            round(&w, &mut base_state, &baseline);
        }
        best_base = best_base.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for _ in 0..BATCH {
            round(&w, &mut dis_state, &disabled);
        }
        best_dis = best_dis.min(t.elapsed().as_secs_f64());
    }
    let overhead = best_dis / best_base - 1.0;
    println!(
        "bench metrics_overhead/overhead_guard disabled-path overhead {:+.3}% \
         (baseline {:.3}ms, disabled {:.3}ms per {BATCH} rounds)",
        overhead * 100.0,
        best_base * 1e3,
        best_dis * 1e3,
    );
    assert!(
        overhead < 0.02,
        "disabled-path metrics cost {:.2}% > 2% on the decode hot loop",
        overhead * 100.0
    );
}

criterion_group!(
    benches,
    bench_baseline,
    bench_disabled,
    bench_enabled,
    overhead_guard
);
criterion_main!(benches);
