//! Construction cost of the coding strategies (ablation, not a paper
//! figure): Algorithm 1 performs one `(s+1)×(s+1)` LU solve per partition,
//! so cost should scale ≈ `k·(s+1)³`; the group-based construction adds
//! the exact-cover search on top.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetgc::{cyclic, group_based, heter_aware, ClusterSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_heter_aware(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct/heter_aware");
    for (m, s) in [(8usize, 1usize), (16, 1), (32, 1), (8, 2), (16, 2)] {
        let throughputs: Vec<f64> = (0..m).map(|i| 1.0 + (i % 4) as f64).collect();
        let k = 2 * m;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_s{s}")),
            &(throughputs, k, s),
            |b, (ths, k, s)| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| heter_aware(ths, *k, *s, &mut rng).expect("construct"));
            },
        );
    }
    group.finish();
}

fn bench_cyclic(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct/cyclic");
    for m in [8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| cyclic(m, 1, &mut rng).expect("construct"));
        });
    }
    group.finish();
}

fn bench_group_based(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct/group_based");
    for cluster in [ClusterSpec::cluster_a(), ClusterSpec::cluster_b()] {
        let throughputs = cluster.throughputs();
        let k = hetgc_coding::suggest_partition_count(
            &throughputs,
            1,
            cluster.len(),
            6 * cluster.len(),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(cluster.name().to_owned()),
            &(throughputs, k),
            |b, (ths, k)| {
                let mut rng = StdRng::seed_from_u64(3);
                b.iter(|| group_based(ths, *k, 1, &mut rng).expect("construct"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_heter_aware, bench_cyclic, bench_group_based);
criterion_main!(benches);
