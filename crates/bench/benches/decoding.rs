//! Decoding cost (the paper's §III-B claims realtime decode-vector solves
//! cost `O(mk²)` and "can be ignored" relative to gradient computation —
//! this bench quantifies that claim), measured through the unified
//! `GradientCodec` API: uncached solves, cached plan lookups, and full
//! streaming rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetgc::{heter_aware, CodingMatrix, CompiledCodec, GradientCodec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(m: usize, s: usize) -> CodingMatrix {
    let throughputs: Vec<f64> = (0..m).map(|i| 1.0 + (i % 4) as f64).collect();
    let mut rng = StdRng::seed_from_u64(11);
    heter_aware(&throughputs, 2 * m, s, &mut rng).expect("construct")
}

fn bench_one_shot_decode(c: &mut Criterion) {
    // The uncompiled path: every call re-solves (the old `decode_vector`).
    let mut group = c.benchmark_group("decode/one_shot_uncached");
    for m in [8usize, 16, 32] {
        let code = build(m, 1);
        let survivors: Vec<usize> = (1..m).collect(); // worker 0 straggles
        group.bench_with_input(BenchmarkId::from_parameter(m), &code, |b, code| {
            b.iter(|| code.decode_plan(&survivors).expect("decodable"));
        });
    }
    group.finish();
}

fn bench_cached_plan(c: &mut Criterion) {
    // The compiled path: the same survivor set hits the LRU plan cache.
    let mut group = c.benchmark_group("decode/one_shot_cached");
    for m in [8usize, 16, 32] {
        let codec = CompiledCodec::new(build(m, 1));
        let survivors: Vec<usize> = (1..m).collect();
        codec.decode_plan(&survivors).expect("warm the cache");
        group.bench_with_input(BenchmarkId::from_parameter(m), &codec, |b, codec| {
            b.iter(|| codec.decode_plan(&survivors).expect("decodable"));
        });
    }
    group.finish();
}

fn bench_online_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode/online_full_round");
    for m in [8usize, 16, 32] {
        let codec = CompiledCodec::new(build(m, 1));
        group.bench_with_input(BenchmarkId::from_parameter(m), &codec, |b, codec| {
            let mut session = codec.session();
            b.iter(|| {
                session.reset();
                for w in 0..m {
                    if session.push(w).expect("valid push").is_some() {
                        return;
                    }
                }
                panic!("never decoded");
            });
        });
    }
    group.finish();
}

fn bench_decode_matrix(c: &mut Criterion) {
    // The offline A matrix enumerates C(m, s) patterns: viable for small m
    // (the paper's storage-vs-solve tradeoff).
    let mut group = c.benchmark_group("decode/full_matrix");
    group.sample_size(10);
    for m in [8usize, 12] {
        let code = build(m, 1);
        group.bench_with_input(BenchmarkId::from_parameter(m), &code, |b, code| {
            b.iter(|| hetgc::DecodingMatrix::build(code).expect("robust"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_one_shot_decode,
    bench_cached_plan,
    bench_online_decode,
    bench_decode_matrix
);
criterion_main!(benches);
