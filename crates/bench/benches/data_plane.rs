//! The gradient data plane, measured three ways:
//!
//! * `data_plane/encode`  — allocating `encode` vs pooled `encode_into`
//!   over a flat `GradientBlock`;
//! * `data_plane/decode`  — allocating `DecodePlan::apply_into` (HashMap of
//!   owned vectors) vs `apply_into` straight over the arrival block;
//! * `data_plane/decode_large` — whole-round decode at d = 65 536:
//!   per-row scalar combine vs the cache-blocked plan-matrix product;
//! * `data_plane/round`   — a full master collect round: legacy `push`
//!   (fresh plan per round) vs zero-alloc `push_arrival`/`decoded_plan`;
//! * `data_plane/driver`  — sequential `TrainDriver` vs double-buffered
//!   `PipelinedDriver` on the real threaded runtime.
//!
//! The CI `bench-smoke` job runs this bench with `--test` on every PR and
//! surfaces the comparison numbers in the job log.

#![allow(deprecated)] // the allocating arms are the baseline under test

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hetgc::{
    heter_aware, synthetic, CompiledCodec, Dataset, GradientBlock, GradientCodec, LinearRegression,
    Model, PipelinedDriver, RuntimeConfig, Sgd, ThreadedEngine, TrainDriver, WorkerBehavior,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 256;

fn fixture() -> (CompiledCodec, Vec<Vec<f64>>, GradientBlock) {
    let mut rng = StdRng::seed_from_u64(3);
    let rates = [1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 4.0];
    let code = heter_aware(&rates, 23, 1, &mut rng).unwrap();
    let codec = CompiledCodec::new(code);
    let k = codec.partitions();
    let rows: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..DIM).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let block = GradientBlock::from_rows(&rows).unwrap();
    (codec, rows, block)
}

fn bench_encode(c: &mut Criterion) {
    let (codec, rows, block) = fixture();
    let m = codec.workers();
    let mut group = c.benchmark_group("data_plane/encode");
    group.bench_function("allocating", |b| {
        b.iter(|| {
            for w in 0..m {
                black_box(codec.encode(w, &rows).unwrap());
            }
        })
    });
    let mut out = vec![0.0; DIM];
    group.bench_function("pooled", |b| {
        b.iter(|| {
            for w in 0..m {
                codec.encode_into(w, &block, &mut out).unwrap();
                black_box(out[0]);
            }
        })
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let (codec, _rows, block) = fixture();
    let m = codec.workers();
    // Worker 0 straggles: decode over the other m − 1.
    let survivors: Vec<usize> = (1..m).collect();
    let plan = codec.decode_plan(&survivors).unwrap();
    // Arrival payloads, both layouts pre-built (the bench measures the
    // combine, not the transport).
    let mut arrivals = GradientBlock::new(m, DIM);
    let mut out = vec![0.0; DIM];
    for &w in &survivors {
        codec.encode_into(w, &block, &mut out).unwrap();
        arrivals.row_mut(w).copy_from_slice(&out);
    }
    let coded: HashMap<usize, Vec<f64>> = survivors
        .iter()
        .map(|&w| (w, arrivals.row(w).to_vec()))
        .collect();

    let mut group = c.benchmark_group("data_plane/decode");
    group.bench_function("allocating", |b| {
        b.iter(|| {
            let mut fresh = vec![0.0; DIM];
            plan.apply_into(|w| coded.get(&w).map(Vec::as_slice), &mut fresh)
                .unwrap();
            black_box(fresh[0])
        })
    });
    group.bench_function("pooled", |b| {
        b.iter(|| {
            plan.apply_block_into(&arrivals, &mut out).unwrap();
            black_box(out[0])
        })
    });
    group.finish();
}

/// Whole-round decode at a realistic model size (d = 65 536): the
/// per-row scalar f64 combine every gradient-coding codebase starts
/// with (and the only thing the pre-`Element` kernels could express),
/// against the cache-blocked `apply_block_into` plan-matrix product in
/// f64 and in f32. At this size the combine is memory-bound — the
/// arrival rows stream through the cache hierarchy — so the narrow
/// element path the generic kernels unlock is the ≥ 2× lever: half the
/// bytes per gradient, half the streamed traffic.
fn bench_decode_large(c: &mut Criterion) {
    const LARGE_DIM: usize = 65_536;
    let mut rng = StdRng::seed_from_u64(3);
    let rates = [1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 4.0];
    let code = heter_aware(&rates, 23, 1, &mut rng).unwrap();
    let codec = CompiledCodec::new(code);
    let (m, k) = (codec.workers(), codec.partitions());
    let mut partials = GradientBlock::new(k, LARGE_DIM);
    for x in partials.as_mut_slice() {
        *x = rng.gen_range(-2.0..2.0);
    }
    let survivors: Vec<usize> = (1..m).collect(); // worker 0 straggles
    let plan = codec.decode_plan(&survivors).unwrap();
    let mut arrivals = GradientBlock::new(m, LARGE_DIM);
    for &w in &survivors {
        let row = arrivals.row_mut(w);
        codec.encode_into(w, &partials, row).unwrap();
    }
    let arrivals32: GradientBlock<f32> = arrivals.convert();
    let mut out = vec![0.0; LARGE_DIM];
    let mut out32 = vec![0.0_f32; LARGE_DIM];

    let mut group = c.benchmark_group("data_plane/decode_large");
    group.sample_size(10);
    group.bench_function("per_row_scalar_f64", |b| {
        b.iter(|| {
            out.fill(0.0);
            for (w, coef) in plan.iter() {
                let row = arrivals.row(w);
                for (o, &x) in out.iter_mut().zip(row) {
                    *o += coef * x;
                }
            }
            black_box(out[0])
        })
    });
    group.bench_function("blocked_f64", |b| {
        b.iter(|| {
            plan.apply_block_into(&arrivals, &mut out).unwrap();
            black_box(out[0])
        })
    });
    group.bench_function("blocked_f32", |b| {
        b.iter(|| {
            plan.apply_block_into(&arrivals32, &mut out32).unwrap();
            black_box(out32[0])
        })
    });
    group.finish();
}

fn bench_round(c: &mut Criterion) {
    let (codec, _rows, _block) = fixture();
    let m = codec.workers();
    let order: Vec<usize> = (1..m).collect(); // worker 0 straggles
    let mut group = c.benchmark_group("data_plane/round");
    let mut legacy = codec.session();
    group.bench_function("push_allocating_plan", |b| {
        b.iter(|| {
            legacy.reset();
            for &w in &order {
                if let Some(plan) = legacy.push(w).unwrap() {
                    return black_box(plan.len());
                }
            }
            unreachable!("m − s survivors decode")
        })
    });
    let mut pooled = codec.session();
    group.bench_function("push_arrival_pooled", |b| {
        b.iter(|| {
            pooled.reset();
            for &w in &order {
                if pooled.push_arrival(w).unwrap() {
                    return black_box(pooled.decoded_plan().unwrap().len());
                }
            }
            unreachable!("m − s survivors decode")
        })
    });
    group.finish();
}

/// `LinearRegression` with a fixed master-side evaluation cost, matching
/// `tests/pipelined.rs`: pipelining pays off when the master has real
/// per-round work to hide behind the workers' compute.
struct SlowLossModel {
    inner: LinearRegression,
    loss_cost: Duration,
}

impl Model for SlowLossModel {
    fn num_params(&self) -> usize {
        self.inner.num_params()
    }

    fn loss(&self, params: &[f64], data: &Dataset, range: (usize, usize)) -> f64 {
        std::thread::sleep(self.loss_cost);
        self.inner.loss(params, data, range)
    }

    fn gradient(&self, params: &[f64], data: &Dataset, range: (usize, usize)) -> Vec<f64> {
        self.inner.gradient(params, data, range)
    }

    fn gradient_into(
        &self,
        params: &[f64],
        data: &Dataset,
        range: (usize, usize),
        out: &mut [f64],
    ) {
        self.inner.gradient_into(params, data, range, out);
    }

    fn init_params(&self, rng: &mut dyn rand::RngCore) -> Vec<f64> {
        self.inner.init_params(rng)
    }
}

fn bench_driver(c: &mut Criterion) {
    let model = Arc::new(SlowLossModel {
        inner: LinearRegression::new(3),
        loss_cost: Duration::from_millis(2),
    });
    let mut rng = StdRng::seed_from_u64(11);
    let data = Arc::new(synthetic::linear_regression(240, 3, 0.01, &mut rng));
    let code = heter_aware(&[1.0; 4], 4, 1, &mut rng).unwrap();
    // ~4 ms of (emulated) compute per round: 120 samples per worker.
    let mut config = RuntimeConfig::nominal(4);
    for w in 0..4 {
        config = config.set_behavior(w, WorkerBehavior::nominal().with_throttle(120.0 / 0.004));
    }
    let rounds = 5;

    let mut group = c.benchmark_group("data_plane/driver");
    group.sample_size(5);
    group.bench_function("sequential_threaded", |b| {
        let mut engine =
            ThreadedEngine::new(code.clone(), Arc::clone(&model), Arc::clone(&data), &config)
                .unwrap();
        b.iter(|| {
            let out = TrainDriver::new(model.as_ref(), data.as_ref(), Sgd::new(0.2))
                .run(&mut engine, rounds, &mut StdRng::seed_from_u64(7))
                .unwrap();
            black_box(out.rounds())
        })
    });
    group.bench_function("pipelined_threaded", |b| {
        let mut engine =
            ThreadedEngine::new(code.clone(), Arc::clone(&model), Arc::clone(&data), &config)
                .unwrap();
        b.iter(|| {
            let out = PipelinedDriver::new(model.as_ref(), data.as_ref(), Sgd::new(0.2))
                .run(&mut engine, rounds, &mut StdRng::seed_from_u64(7))
                .unwrap();
            black_box(out.rounds())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_decode_large,
    bench_round,
    bench_driver
);
criterion_main!(benches);
