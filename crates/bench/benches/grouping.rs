//! Cost of the group search (Algorithm 2): exact-cover enumeration over
//! the cyclic supports of Eq. 6 plus pairwise-disjoint pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetgc::{Allocation, ClusterSpec, SupportMatrix};
use hetgc_coding::{find_all_groups, prune_groups, GroupSearchConfig};

fn support_for(cluster: &ClusterSpec, s: usize) -> SupportMatrix {
    let c = cluster.throughputs();
    let k = hetgc_coding::suggest_partition_count(&c, s, cluster.len(), 6 * cluster.len());
    let alloc = Allocation::balanced(&c, k, s).expect("feasible");
    SupportMatrix::cyclic(&alloc).expect("cyclic support")
}

fn bench_find_groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("groups/find");
    for cluster in ClusterSpec::table2() {
        let support = support_for(&cluster, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(cluster.name().to_owned()),
            &support,
            |b, support| {
                b.iter(|| find_all_groups(support, GroupSearchConfig::default()));
            },
        );
    }
    group.finish();
}

fn bench_prune_groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("groups/prune");
    for cluster in [ClusterSpec::cluster_b(), ClusterSpec::cluster_c()] {
        let support = support_for(&cluster, 1);
        let groups = find_all_groups(&support, GroupSearchConfig::default());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}_{}groups", cluster.name(), groups.len())),
            &groups,
            |b, groups| {
                b.iter(|| prune_groups(groups.clone()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_find_groups, bench_prune_groups);
criterion_main!(benches);
