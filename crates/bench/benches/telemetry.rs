//! Cost of the adaptation loop's hot path: a mid-run re-code — rebuild
//! the scheme from fresh estimates (Eq. 5 → Eq. 6 → Alg. 1), recompile
//! the codec backend, re-partition, re-create the session — measured
//! per engine swap on Cluster-A-sized clusters and up.
//!
//! The claim this bench pins: re-coding stays **microseconds-scale per
//! round** against simulated/wall-clock round times of tens of
//! milliseconds to seconds, so the `RecodeController` can fire whenever
//! drift is confirmed without the rebuild itself ever appearing on the
//! critical path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hetgc::{
    synthetic, ClusterSpec, EscalationPolicy, LinearRegression, RoundEngine, SchemeKind,
    SimBspEngine, SimTrainConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cluster-A's throughput shape (Table II), extended cyclically.
fn throughputs(m: usize) -> Vec<f64> {
    let base = ClusterSpec::cluster_a().throughputs();
    (0..m).map(|i| base[i % base.len()]).collect()
}

fn bench_recode_hot_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/recode_hot_swap");
    for m in [8usize, 16, 32] {
        let rates = throughputs(m);
        let mut rng = StdRng::seed_from_u64(5);
        let data = synthetic::linear_regression(12 * m, 3, 0.01, &mut rng);
        let model = LinearRegression::new(3);
        let scheme =
            hetgc::scheme_from_estimates(SchemeKind::HeterAware, &rates, 1, None, &mut rng)
                .expect("scheme");
        let cfg = SimTrainConfig::default();
        let mut engine = SimBspEngine::new(
            &scheme,
            &model,
            &data,
            &rates,
            &cfg,
            EscalationPolicy::follow_backend(),
        )
        .expect("engine");
        // Fresh estimates a drifted cluster would produce: two workers at
        // 30 % speed.
        let mut estimates = rates.clone();
        estimates[1] *= 0.3;
        estimates[2] *= 0.3;
        group.bench_with_input(BenchmarkId::from_parameter(m), &estimates, |b, est| {
            b.iter(|| {
                let applied = engine
                    .recode(black_box(est), &mut rng)
                    .expect("recode never errors on feasible estimates");
                assert!(applied, "rebuild must be feasible");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recode_hot_swap);
criterion_main!(benches);
