//! Simulator throughput: how many BSP iterations per second the
//! discrete-event engine sustains on each Table II cluster — establishes
//! that the figure harnesses measure the modelled system, not the
//! simulator's own overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetgc::{
    simulate_bsp_iteration, synthetic, BspIterationConfig, ClusterSpec, EscalationPolicy,
    LinearRegression, NetworkModel, SchemeBuilder, SchemeKind, Sgd, SimBspEngine, SimTrainConfig,
    StragglerModel, TrainDriver,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_bsp_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/bsp_iteration");
    for cluster in ClusterSpec::table2() {
        let mut rng = StdRng::seed_from_u64(5);
        let scheme = SchemeBuilder::new(&cluster, 1)
            .build(SchemeKind::HeterAware, &mut rng)
            .expect("scheme");
        let rates = cluster.throughputs();
        group.bench_with_input(
            BenchmarkId::from_parameter(cluster.name().to_owned()),
            &(scheme, rates),
            |b, (scheme, rates)| {
                let cfg = BspIterationConfig::new(rates)
                    .network(NetworkModel::lan())
                    .compute_jitter(0.05);
                let straggler = StragglerModel::RandomChoice {
                    count: 1,
                    delay: hetgc::DelayDistribution::Constant(1.0),
                };
                let mut rng = StdRng::seed_from_u64(6);
                b.iter(|| {
                    let events = straggler.sample_iteration(scheme.code.workers(), &mut rng);
                    simulate_bsp_iteration(&scheme.code, &cfg, &events, &mut rng).expect("simulate")
                });
            },
        );
    }
    group.finish();
}

fn bench_ssp_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/ssp_1000_events");
    for m in [8usize, 32, 58] {
        let iter_times: Vec<f64> = (0..m).map(|i| 0.1 + 0.05 * (i % 5) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &iter_times, |b, times| {
            b.iter(|| {
                let mut engine = hetgc::SspEngine::new(times.clone(), 3).expect("engine");
                for _ in 0..1000 {
                    engine.next_event().expect("infinite stream");
                }
            });
        });
    }
    group.finish();
}

/// Full unified-loop rounds (driver + SimBspEngine, real SGD on a small
/// linear model): the per-round overhead of the `TrainDriver` abstraction
/// on top of the raw simulator, and the source of the JSON trajectories
/// captured across PRs via `TrainOutcome::to_json`.
fn bench_train_driver_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/train_driver_10_rounds");
    let cluster = ClusterSpec::cluster_a();
    let rates = cluster.throughputs();
    for kind in [SchemeKind::HeterAware, SchemeKind::GroupBased] {
        let mut rng = StdRng::seed_from_u64(7);
        let scheme = SchemeBuilder::new(&cluster, 1)
            .build(kind, &mut rng)
            .expect("scheme");
        let data = synthetic::linear_regression(96, 4, 0.02, &mut rng);
        let model = LinearRegression::new(4);
        let cfg = SimTrainConfig {
            iterations: 10,
            learning_rate: 0.2,
            compute_jitter: 0.05,
            ..SimTrainConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &scheme,
            |b, scheme| {
                b.iter(|| {
                    let mut engine = SimBspEngine::new(
                        scheme,
                        &model,
                        &data,
                        &rates,
                        &cfg,
                        EscalationPolicy::follow_backend(),
                    )
                    .expect("engine");
                    let mut run_rng = StdRng::seed_from_u64(8);
                    TrainDriver::new(&model, &data, Sgd::new(cfg.learning_rate))
                        .run(&mut engine, cfg.iterations, &mut run_rng)
                        .expect("run")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bsp_iteration,
    bench_ssp_events,
    bench_train_driver_rounds
);
criterion_main!(benches);
