//! Simulator throughput: how many BSP iterations per second the
//! discrete-event engine sustains on each Table II cluster — establishes
//! that the figure harnesses measure the modelled system, not the
//! simulator's own overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetgc::{
    simulate_bsp_iteration, BspIterationConfig, ClusterSpec, NetworkModel, SchemeBuilder,
    SchemeKind, StragglerModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_bsp_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/bsp_iteration");
    for cluster in ClusterSpec::table2() {
        let mut rng = StdRng::seed_from_u64(5);
        let scheme = SchemeBuilder::new(&cluster, 1)
            .build(SchemeKind::HeterAware, &mut rng)
            .expect("scheme");
        let rates = cluster.throughputs();
        group.bench_with_input(
            BenchmarkId::from_parameter(cluster.name().to_owned()),
            &(scheme, rates),
            |b, (scheme, rates)| {
                let cfg = BspIterationConfig::new(rates)
                    .network(NetworkModel::lan())
                    .compute_jitter(0.05);
                let straggler = StragglerModel::RandomChoice {
                    count: 1,
                    delay: hetgc::DelayDistribution::Constant(1.0),
                };
                let mut rng = StdRng::seed_from_u64(6);
                b.iter(|| {
                    let events = straggler.sample_iteration(scheme.code.workers(), &mut rng);
                    simulate_bsp_iteration(&scheme.code, &cfg, &events, &mut rng).expect("simulate")
                });
            },
        );
    }
    group.finish();
}

fn bench_ssp_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/ssp_1000_events");
    for m in [8usize, 32, 58] {
        let iter_times: Vec<f64> = (0..m).map(|i| 0.1 + 0.05 * (i % 5) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &iter_times, |b, times| {
            b.iter(|| {
                let mut engine = hetgc::SspEngine::new(times.clone(), 3).expect("engine");
                for _ in 0..1000 {
                    engine.next_event().expect("infinite stream");
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bsp_iteration, bench_ssp_events);
criterion_main!(benches);
