//! The scheduler's acceptance contract:
//!
//! * ≥ 4 jobs genuinely concurrent over one shared pool, with batch
//!   throughput ≥ 1.3× the sequential baseline;
//! * cross-job decode-plan reuse visible in the shared cache's counters
//!   (solves strictly below lookups, hits from every follower tenant);
//! * per-job `job_id` attribution on every interleaved record;
//! * deterministic epoch-driven rebalancing when a co-tenant commits
//!   load.

use std::time::Duration;

use hetgc::{
    scheme_from_estimates, synthetic, EscalationPolicy, LinearRegression, Model, RoundEngine,
    SchemeKind, SimBspEngine, SimTrainConfig,
};
use hetgc_runtime::WorkerBehavior;
use hetgc_sched::{JobScheduler, JobSpec, LeasedEngine, SharedWorkerPool};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 4-worker fleet whose rounds are sleep-dominated (every worker adds
/// a fixed delay) with one consistent straggler, so concurrent jobs
/// overlap their waiting and every job decodes the same survivor set.
fn delay_pool(max_concurrent: usize) -> SharedWorkerPool {
    let fast = WorkerBehavior::nominal().with_delay(Duration::from_millis(10));
    let slow = WorkerBehavior::nominal().with_delay(Duration::from_millis(30));
    SharedWorkerPool::new(vec![1.0; 4])
        .with_behaviors(vec![fast.clone(), fast.clone(), fast, slow])
        .with_max_concurrent(max_concurrent)
}

#[test]
fn four_concurrent_jobs_beat_sequential_and_share_plans() {
    let pool = delay_pool(4);
    let mut sched = JobScheduler::new(pool.clone());
    for name in ["tenant-a", "tenant-b", "tenant-c", "tenant-d"] {
        // Equal seeds → identical codes → one decode-plan namespace.
        sched = sched.submit(JobSpec::new(name).with_rounds(5).with_seed(11));
    }

    let scheduled = sched.run().expect("concurrent batch");
    let sequential = sched.run_sequential().expect("sequential baseline");

    assert_eq!(scheduled.outcomes.len(), 4);
    assert_eq!(
        scheduled.peak_concurrent, 4,
        "all four tenants must actually overlap"
    );
    for outcome in &scheduled.outcomes {
        assert_eq!(outcome.rounds(), 5, "{}", outcome.label);
        assert!(!outcome.stalled);
    }

    // Throughput: overlapped sleep-dominated rounds must beat running
    // the same four jobs back to back.
    let speedup = scheduled.jobs_per_sec() / sequential.jobs_per_sec();
    assert!(
        speedup >= 1.3,
        "scheduled {:.2} jobs/s vs sequential {:.2} jobs/s (×{speedup:.2}) — {}",
        scheduled.jobs_per_sec(),
        sequential.jobs_per_sec(),
        scheduled.summary(),
    );

    // Cross-job plan reuse: worker 3 is always last, so every tenant
    // decodes the same survivor set; the first to need the plan solves
    // it, the rest hit the shared cache.
    assert!(
        scheduled.cache_solves < scheduled.cache_lookups,
        "solves {} must stay below lookups {}",
        scheduled.cache_solves,
        scheduled.cache_lookups,
    );
    assert!(
        scheduled.cache_hits >= 3,
        "three follower tenants must reuse the leader's solve (hits = {})",
        scheduled.cache_hits,
    );

    // Fleet rollup covers every tenant's rounds.
    assert_eq!(scheduled.fleet.jobs().len(), 4);
    assert_eq!(scheduled.fleet.total_rounds(), 20);
    assert!(scheduled.fleet.jobs_per_sec() > 0.0);
    // Data-plane stats merged across tenants: the threaded master pools
    // its decode buffers, so steady state shows recycling.
    assert!(scheduled.data_plane.checkouts() > 0);
}

#[test]
fn records_carry_their_jobs_tag() {
    let pool = delay_pool(2);
    let report = JobScheduler::new(pool)
        .submit(JobSpec::new("alpha").with_rounds(3))
        .submit(JobSpec::new("beta").with_rounds(3).with_seed(9).pipelined())
        .run()
        .expect("batch");
    assert_eq!(report.outcomes.len(), 2);
    for outcome in &report.outcomes {
        assert!(!outcome.records.is_empty());
        for record in &outcome.records {
            assert_eq!(
                record.job_id.as_deref(),
                Some(outcome.label.as_str()),
                "every interleaved record is attributable"
            );
            // The tag survives the JSONL round trip.
            let parsed = hetgc::RoundRecord::from_json(&record.to_json()).unwrap();
            assert_eq!(&parsed, record);
        }
    }
    // The pipelined tenant's telemetry flowed through the collect path.
    let beta = report
        .fleet
        .jobs()
        .iter()
        .find(|j| j.job_id == "beta")
        .expect("beta telemetry");
    assert_eq!(beta.rounds, 3);
    assert!(beta.samples_ingested > 0);
}

#[test]
fn co_tenant_load_commit_triggers_one_rebalance() {
    // Deterministic, simulator-backed: tenant A runs rounds; tenant B
    // arrives and commits load; A's next round must re-code against the
    // pool's new effective rates, exactly once.
    let pool = SharedWorkerPool::new(vec![1.0, 2.0, 2.0, 4.0]);
    let lease = pool.lease();
    let rates = lease.effective_rates();

    let mut rng = StdRng::seed_from_u64(3);
    let scheme = scheme_from_estimates(SchemeKind::HeterAware, &rates, 1, None, &mut rng)
        .expect("feasible scheme");
    let model = LinearRegression::new(3);
    let data = synthetic::linear_regression(96, 3, 0.01, &mut rng);
    let engine = SimBspEngine::new(
        &scheme,
        &model,
        &data,
        &rates,
        &SimTrainConfig::default(),
        EscalationPolicy::follow_backend(),
    )
    .expect("sim engine");
    let mut tenant_a = LeasedEngine::new(engine, lease).with_rebalancing(true);
    assert!(
        tenant_a.worker_loads().is_some(),
        "the sim engine reports its loads to the ledger"
    );

    let params = model.init_params(&mut rng);
    tenant_a.round(1, &params, &mut rng).expect("round 1");
    assert_eq!(tenant_a.rebalances(), 0, "no co-tenant yet: no rebalance");

    // Tenant B arrives and claims worker 3 hard.
    let lease_b = pool.lease();
    lease_b.commit_load(&[0, 0, 0, 8]);
    let contended = pool.effective_rates_for(tenant_a.lease().job_id());
    assert!(contended[3] < 4.0, "worker 3 now looks slower to A");

    tenant_a.round(2, &params, &mut rng).expect("round 2");
    assert_eq!(tenant_a.rebalances(), 1, "epoch change → one re-code");
    // The rebuild's own ledger commit must not re-trigger.
    tenant_a.round(3, &params, &mut rng).expect("round 3");
    assert_eq!(tenant_a.rebalances(), 1);

    // Telemetry followed every completed round.
    assert_eq!(tenant_a.hub().rounds(), 3);

    // B leaving moves the epoch again: A rebalances back.
    drop(lease_b);
    tenant_a.round(4, &params, &mut rng).expect("round 4");
    assert_eq!(tenant_a.rebalances(), 2, "departure → another re-code");
}
