//! The shared worker fleet: one [`SharedWorkerPool`] describes the
//! physical workers every tenant job time-slices — their base
//! throughputs, their injected behaviours, the fleet-wide decode-plan
//! cache — and tracks which jobs currently hold capacity on which
//! worker.
//!
//! The pool is *logical*: each job still drives its own
//! `ThreadedCluster` (the OS time-slices the actual threads), but the
//! pool's committed-load ledger is what turns co-tenancy into numbers a
//! scheme construction can act on. A worker carrying other tenants'
//! partitions looks proportionally slower through
//! [`SharedWorkerPool::effective_rates_for`], so a job that rebalances
//! against those rates shifts load *away* from contended workers —
//! exactly the Eq. 5 allocation reacting to heterogeneity, with the
//! heterogeneity now coming from the scheduler itself.
//!
//! Every admission, load commit and release bumps the pool [epoch]
//! counter; tenants compare epochs between rounds to decide when to
//! rebalance ([`crate::LeasedEngine`]).
//!
//! [epoch]: SharedWorkerPool::epoch

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use hetgc_coding::SharedPlanCache;
use hetgc_runtime::WorkerBehavior;

/// Unique identifier of one admitted job, assigned at
/// [`SharedWorkerPool::lease`] time.
pub type JobId = u64;

#[derive(Debug, Default)]
struct PoolLedger {
    /// Per-job committed load *fractions* per worker: `1.0` means the
    /// job's heaviest-loaded worker, `0.0` an idle one.
    loads: HashMap<JobId, Vec<f64>>,
    active: usize,
    peak_active: usize,
    admitted: u64,
    epoch: u64,
    next_job: JobId,
}

#[derive(Debug)]
struct PoolInner {
    base_rates: Vec<f64>,
    behaviors: Vec<WorkerBehavior>,
    max_concurrent: usize,
    shared_plans: Arc<SharedPlanCache>,
    ledger: Mutex<PoolLedger>,
    freed: Condvar,
}

/// A shared worker fleet tenanted by many concurrent training jobs.
///
/// Cloning is cheap (an `Arc` handle); every clone sees the same ledger,
/// epoch and fleet-wide decode-plan cache.
///
/// # Example
///
/// ```
/// use hetgc_sched::SharedWorkerPool;
///
/// let pool = SharedWorkerPool::new(vec![1.0, 2.0, 2.0, 4.0]).with_max_concurrent(2);
/// let lease = pool.lease();
/// // A committed load shapes what OTHER tenants see as worker speed.
/// lease.commit_load(&[0, 0, 0, 4]);
/// let other = pool.lease();
/// let rates = pool.effective_rates_for(other.job_id());
/// assert_eq!(rates[0], 1.0); // uncontended
/// assert_eq!(rates[3], 2.0); // fully claimed by the first tenant: halved
/// ```
#[derive(Debug, Clone)]
pub struct SharedWorkerPool {
    inner: Arc<PoolInner>,
}

impl SharedWorkerPool {
    /// A pool of `base_rates.len()` workers with the given base
    /// throughputs (samples/second when uncontended), nominal behaviours
    /// and unlimited concurrency.
    ///
    /// # Panics
    ///
    /// Panics when `base_rates` is empty or contains a non-positive or
    /// non-finite rate.
    pub fn new(base_rates: Vec<f64>) -> Self {
        assert!(!base_rates.is_empty(), "a pool needs at least one worker");
        assert!(
            base_rates.iter().all(|r| r.is_finite() && *r > 0.0),
            "base rates must be positive and finite"
        );
        let workers = base_rates.len();
        SharedWorkerPool {
            inner: Arc::new(PoolInner {
                base_rates,
                behaviors: vec![WorkerBehavior::nominal(); workers],
                max_concurrent: usize::MAX,
                shared_plans: Arc::new(SharedPlanCache::new()),
                ledger: Mutex::new(PoolLedger::default()),
                freed: Condvar::new(),
            }),
        }
    }

    /// Replaces the per-worker behaviours (delays, throttles, failures)
    /// every tenant's cluster runs under.
    ///
    /// # Panics
    ///
    /// Panics when the behaviour count does not match the worker count,
    /// or when the pool has already been shared (leased or cloned).
    pub fn with_behaviors(mut self, behaviors: Vec<WorkerBehavior>) -> Self {
        let inner =
            Arc::get_mut(&mut self.inner).expect("configure the pool before sharing or leasing it");
        assert_eq!(
            behaviors.len(),
            inner.base_rates.len(),
            "one behaviour per worker"
        );
        inner.behaviors = behaviors;
        self
    }

    /// Caps how many jobs hold leases at once; further
    /// [`SharedWorkerPool::lease`] calls block until a slot frees.
    ///
    /// # Panics
    ///
    /// Panics when `max` is zero, or when the pool has already been
    /// shared (leased or cloned).
    pub fn with_max_concurrent(mut self, max: usize) -> Self {
        assert!(max > 0, "at least one concurrent job");
        Arc::get_mut(&mut self.inner)
            .expect("configure the pool before sharing or leasing it")
            .max_concurrent = max;
        self
    }

    /// Number of workers in the fleet.
    pub fn workers(&self) -> usize {
        self.inner.base_rates.len()
    }

    /// The uncontended per-worker throughputs.
    pub fn base_rates(&self) -> &[f64] {
        &self.inner.base_rates
    }

    /// The per-worker behaviours tenant clusters run under.
    pub fn behaviors(&self) -> &[WorkerBehavior] {
        &self.inner.behaviors
    }

    /// The fleet-wide decode-plan cache every tenant's codec attaches to
    /// (see [`hetgc_runtime::RuntimeConfig::shared_plans`]).
    pub fn shared_plans(&self) -> Arc<SharedPlanCache> {
        Arc::clone(&self.inner.shared_plans)
    }

    /// The ledger's change counter: bumped by every admission, load
    /// commit and release. Tenants rebalance when it moves.
    pub fn epoch(&self) -> u64 {
        self.inner.ledger.lock().expect("pool poisoned").epoch
    }

    /// Jobs currently holding a lease.
    pub fn active_jobs(&self) -> usize {
        self.inner.ledger.lock().expect("pool poisoned").active
    }

    /// The most jobs that ever held leases at once — the proof of actual
    /// concurrency a scheduler bench reports.
    pub fn peak_active(&self) -> usize {
        self.inner.ledger.lock().expect("pool poisoned").peak_active
    }

    /// Total leases granted over the pool's lifetime.
    pub fn admitted(&self) -> u64 {
        self.inner.ledger.lock().expect("pool poisoned").admitted
    }

    /// Admits one job, blocking while
    /// [`SharedWorkerPool::with_max_concurrent`] jobs already hold
    /// leases. The returned lease releases its slot (and erases the
    /// job's committed load) on drop.
    pub fn lease(&self) -> PoolLease {
        let mut ledger = self.inner.ledger.lock().expect("pool poisoned");
        while ledger.active >= self.inner.max_concurrent {
            ledger = self.inner.freed.wait(ledger).expect("pool poisoned");
        }
        ledger.active += 1;
        ledger.peak_active = ledger.peak_active.max(ledger.active);
        ledger.admitted += 1;
        ledger.epoch += 1;
        let job = ledger.next_job;
        ledger.next_job += 1;
        PoolLease {
            pool: self.clone(),
            job,
        }
    }

    /// Commits job `job`'s per-worker partition loads (what its current
    /// code assigns each worker — [`hetgc::RoundEngine::worker_loads`]).
    /// Loads are normalized to the job's heaviest worker, so one tenant
    /// contributes at most `1.0` contention per worker.
    pub fn commit_load(&self, job: JobId, loads: &[usize]) {
        let peak = loads.iter().copied().max().unwrap_or(0).max(1) as f64;
        let frac: Vec<f64> = {
            let mut f: Vec<f64> = loads.iter().map(|&l| l as f64 / peak).collect();
            f.resize(self.workers(), 0.0);
            f
        };
        let mut ledger = self.inner.ledger.lock().expect("pool poisoned");
        ledger.loads.insert(job, frac);
        ledger.epoch += 1;
    }

    /// The throughput worker `w` effectively offers job `job` right now:
    /// the base rate divided by `1 +` the load fractions every *other*
    /// tenant has committed on `w`. A worker fully claimed by one other
    /// tenant looks half as fast; an uncontended worker keeps its base
    /// rate. This is the contention model a rebalancing tenant rebuilds
    /// its allocation against.
    pub fn effective_rates_for(&self, job: JobId) -> Vec<f64> {
        let ledger = self.inner.ledger.lock().expect("pool poisoned");
        (0..self.workers())
            .map(|w| {
                let contention: f64 = ledger
                    .loads
                    .iter()
                    .filter(|(&j, _)| j != job)
                    .map(|(_, frac)| frac.get(w).copied().unwrap_or(0.0))
                    .sum();
                self.inner.base_rates[w] / (1.0 + contention)
            })
            .collect()
    }

    fn release(&self, job: JobId) {
        let mut ledger = self.inner.ledger.lock().expect("pool poisoned");
        ledger.loads.remove(&job);
        ledger.active -= 1;
        ledger.epoch += 1;
        drop(ledger);
        self.inner.freed.notify_all();
    }
}

/// One job's admission into a [`SharedWorkerPool`]: holds a concurrency
/// slot and the job's identity until dropped.
#[derive(Debug)]
pub struct PoolLease {
    pool: SharedWorkerPool,
    job: JobId,
}

impl PoolLease {
    /// This lease's job identifier.
    pub fn job_id(&self) -> JobId {
        self.job
    }

    /// The pool this lease was granted by.
    pub fn pool(&self) -> &SharedWorkerPool {
        &self.pool
    }

    /// Commits this job's per-worker loads
    /// (see [`SharedWorkerPool::commit_load`]).
    pub fn commit_load(&self, loads: &[usize]) {
        self.pool.commit_load(self.job, loads);
    }

    /// The rates this job should build (or rebuild) its allocation from
    /// (see [`SharedWorkerPool::effective_rates_for`]).
    pub fn effective_rates(&self) -> Vec<f64> {
        self.pool.effective_rates_for(self.job)
    }
}

impl Drop for PoolLease {
    fn drop(&mut self) {
        self.pool.release(self.job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn contention_halves_a_fully_claimed_worker() {
        let pool = SharedWorkerPool::new(vec![4.0, 4.0]);
        let a = pool.lease();
        a.commit_load(&[4, 0]);
        let b = pool.lease();
        // Worker 0 carries tenant A's full load: B sees it at half rate.
        assert_eq!(pool.effective_rates_for(b.job_id()), vec![2.0, 4.0]);
        // A itself never counts its own load as contention.
        assert_eq!(a.effective_rates(), vec![4.0, 4.0]);
        // Releasing A restores B's view.
        drop(a);
        assert_eq!(b.effective_rates(), vec![4.0, 4.0]);
    }

    #[test]
    fn epoch_moves_on_admission_commit_and_release() {
        let pool = SharedWorkerPool::new(vec![1.0]);
        let e0 = pool.epoch();
        let lease = pool.lease();
        let e1 = pool.epoch();
        assert!(e1 > e0, "admission bumps the epoch");
        lease.commit_load(&[3]);
        let e2 = pool.epoch();
        assert!(e2 > e1, "a load commit bumps the epoch");
        drop(lease);
        assert!(pool.epoch() > e2, "release bumps the epoch");
        assert_eq!(pool.active_jobs(), 0);
        assert_eq!(pool.admitted(), 1);
    }

    #[test]
    fn max_concurrent_gates_admission() {
        let pool = SharedWorkerPool::new(vec![1.0, 1.0]).with_max_concurrent(2);
        let running = AtomicUsize::new(0);
        let peak_seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                s.spawn(|| {
                    let _lease = pool.lease();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak_seen.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak_seen.load(Ordering::SeqCst) <= 2, "cap respected");
        assert_eq!(pool.admitted(), 6, "every job eventually admitted");
        assert!(pool.peak_active() <= 2);
    }

    #[test]
    fn loads_normalize_to_the_heaviest_worker() {
        let pool = SharedWorkerPool::new(vec![2.0, 2.0, 2.0]);
        let a = pool.lease();
        a.commit_load(&[1, 2, 4]);
        let b = pool.lease();
        let rates = b.effective_rates();
        // frac = [0.25, 0.5, 1.0] → rates 2/(1+frac).
        assert!((rates[0] - 2.0 / 1.25).abs() < 1e-12);
        assert!((rates[1] - 2.0 / 1.5).abs() < 1e-12);
        assert!((rates[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_pool_rejected() {
        SharedWorkerPool::new(Vec::new());
    }
}
