//! [`LeasedEngine`]: the adapter that turns any single-job
//! [`RoundEngine`] into a well-behaved pool tenant. It
//!
//! * watches the pool [epoch] between rounds and, when other tenants
//!   arrived, finished or shifted load, rebuilds the job's allocation
//!   against the pool's *effective* rates
//!   ([`hetgc::RoundEngine::recode`], Eq. 5 → Eq. 6 → Alg. 1/3);
//! * commits the rebuilt code's per-worker loads back to the ledger, so
//!   the next tenant's view reflects this job's new footprint;
//! * feeds every completed round into a per-job
//!   [`hetgc_telemetry::TelemetryHub`], the source of the scheduler's
//!   fleet rollup.
//!
//! [epoch]: crate::SharedWorkerPool::epoch

use hetgc::{EngineRound, PipelinedEngine, RoundEngine};
use hetgc_obs::Recorder;
use hetgc_telemetry::TelemetryHub;
use rand::RngCore;

use crate::pool::PoolLease;

/// The smoothing factor of the per-job throughput estimator: reactive
/// enough to follow contention shifts within a short job.
const HUB_ALPHA: f64 = 0.4;
/// Round-time quantile window of the per-job hub.
const HUB_WINDOW: usize = 32;

type BoxError = Box<dyn std::error::Error + Send + Sync>;

/// A pool tenant: an inner [`RoundEngine`] plus the lease, telemetry and
/// rebalance logic that make it cooperate with other jobs on the shared
/// fleet. Construct via [`LeasedEngine::new`], then drive it through
/// `TrainDriver`/`PipelinedDriver` exactly like the engine it wraps.
#[derive(Debug)]
pub struct LeasedEngine<E> {
    inner: E,
    lease: PoolLease,
    hub: TelemetryHub,
    seen_epoch: u64,
    rebalances: usize,
    rebalance: bool,
}

impl<E: RoundEngine> LeasedEngine<E> {
    /// Wraps `inner` as the tenant holding `lease`. The engine's current
    /// per-worker loads ([`RoundEngine::worker_loads`]) are committed to
    /// the pool immediately, so co-tenants see this job's footprint from
    /// admission on. Rebalancing is off until
    /// [`LeasedEngine::with_rebalancing`] enables it.
    pub fn new(inner: E, lease: PoolLease) -> Self {
        if let Some(loads) = inner.worker_loads() {
            lease.commit_load(&loads);
        }
        let seen_epoch = lease.pool().epoch();
        let hub = TelemetryHub::new(inner.workers(), HUB_ALPHA, HUB_WINDOW);
        LeasedEngine {
            inner,
            lease,
            hub,
            seen_epoch,
            rebalances: 0,
            rebalance: false,
        }
    }

    /// Enables (or disables) epoch-driven rebalancing. Only effective on
    /// engines that support re-coding, and only on the sequential
    /// [`RoundEngine::round`] path — the pipelined dispatch/collect split
    /// has a round in flight at decision time, so it never rebalances.
    pub fn with_rebalancing(mut self, enabled: bool) -> Self {
        self.rebalance = enabled;
        self
    }

    /// The per-job telemetry hub every completed round is ingested into.
    pub fn hub(&self) -> &TelemetryHub {
        &self.hub
    }

    /// How many times the pool epoch triggered a successful re-code.
    pub fn rebalances(&self) -> usize {
        self.rebalances
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// This tenant's lease on the pool.
    pub fn lease(&self) -> &PoolLease {
        &self.lease
    }

    /// Rebuilds the inner engine's allocation when the pool moved under
    /// it. The rebuild targets the pool's current effective rates — not
    /// raw telemetry — so two tenants reacting to the same ledger reach
    /// consistent, deterministic allocations.
    fn maybe_rebalance(&mut self, rng: &mut dyn RngCore) -> Result<(), BoxError> {
        if !self.rebalance || !self.inner.supports_recode() {
            return Ok(());
        }
        let epoch = self.lease.pool().epoch();
        if epoch == self.seen_epoch {
            return Ok(());
        }
        let rates = self.lease.effective_rates();
        if self.inner.recode(&rates, rng)? {
            self.rebalances += 1;
            if let Some(loads) = self.inner.worker_loads() {
                self.lease.commit_load(&loads);
            }
        }
        // Either way the ledger as of now is accounted for — including
        // our own commit's bump, which must not re-trigger next round.
        self.seen_epoch = self.lease.pool().epoch();
        Ok(())
    }

    fn observe(&mut self, er: &EngineRound) {
        if let Some(elapsed) = er.elapsed {
            self.hub.ingest(elapsed, er.residual, &er.samples);
        }
    }
}

impl<E: RoundEngine> RoundEngine for LeasedEngine<E> {
    fn workers(&self) -> usize {
        self.inner.workers()
    }

    fn partitions(&self) -> usize {
        self.inner.partitions()
    }

    fn label(&self) -> &str {
        self.inner.label()
    }

    fn round(
        &mut self,
        round: usize,
        params: &[f64],
        rng: &mut dyn RngCore,
    ) -> Result<EngineRound, BoxError> {
        self.maybe_rebalance(rng)?;
        let er = self.inner.round(round, params, rng)?;
        self.observe(&er);
        Ok(er)
    }

    fn after_step(&mut self, params: &[f64]) {
        self.inner.after_step(params);
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        self.inner.attach_recorder(recorder);
    }

    fn set_deadline(&mut self, deadline: f64) {
        self.inner.set_deadline(deadline);
    }

    fn supports_recode(&self) -> bool {
        self.inner.supports_recode()
    }

    fn recode(&mut self, estimates: &[f64], rng: &mut dyn RngCore) -> Result<bool, BoxError> {
        let applied = self.inner.recode(estimates, rng)?;
        if applied {
            if let Some(loads) = self.inner.worker_loads() {
                self.lease.commit_load(&loads);
                self.seen_epoch = self.lease.pool().epoch();
            }
        }
        Ok(applied)
    }

    fn initial_estimates(&self) -> Option<Vec<f64>> {
        self.inner.initial_estimates()
    }

    fn worker_loads(&self) -> Option<Vec<usize>> {
        self.inner.worker_loads()
    }
}

impl<E: PipelinedEngine> PipelinedEngine for LeasedEngine<E> {
    fn dispatch(&mut self, round: usize, params: &[f64]) -> Result<(), BoxError> {
        self.inner.dispatch(round, params)
    }

    fn collect(&mut self, round: usize) -> Result<EngineRound, BoxError> {
        let er = self.inner.collect(round)?;
        self.observe(&er);
        Ok(er)
    }
}
