//! [`JobScheduler`]: admits a batch of training jobs onto one
//! [`SharedWorkerPool`] and runs them — concurrently under the pool's
//! admission cap ([`JobScheduler::run`]) or one at a time as the
//! baseline ([`JobScheduler::run_sequential`]) — reporting per-job
//! outcomes, the fleet telemetry rollup, the shared decode-plan cache's
//! reuse counters and the merged data-plane statistics in one
//! [`SchedulerReport`].

use std::sync::Arc;
use std::time::Instant;

use hetgc::{
    scheme_from_estimates, synthetic, DriverConfig, LinearRegression, PipelinedDriver, RoundEngine,
    SchemeKind, Sgd, ThreadedEngine, TrainDriver, TrainOutcome,
};
use hetgc_coding::{CodecBackend, EscalationPolicy, PoolStats};
use hetgc_obs::{MetricsRegistry, RunObserver};
use hetgc_runtime::RuntimeConfig;
use hetgc_telemetry::{FleetRollup, JobTelemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::pool::SharedWorkerPool;
use crate::LeasedEngine;

type BoxError = Box<dyn std::error::Error + Send + Sync>;

/// Everything the scheduler needs to run one tenant job: the scheme
/// family and straggler budget the allocation is built with, the codec
/// and escalation configuration, and the (synthetic) training workload.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The job's name — its curve label and its `job_id` record tag.
    pub name: String,
    /// Scheme family the job's allocation is built with.
    pub kind: SchemeKind,
    /// Designed straggler tolerance.
    pub stragglers: usize,
    /// Codec backend the job's master decodes with.
    pub backend: CodecBackend,
    /// Per-round escalation policy (`None` follows the backend).
    pub escalation: Option<EscalationPolicy>,
    /// Collect rounds to train for.
    pub rounds: usize,
    /// Model dimension of the synthetic linear-regression workload.
    pub dim: usize,
    /// Sample count of the synthetic workload.
    pub samples: usize,
    /// Seed for the job's scheme construction, data synthesis and
    /// training loop — two specs with equal seeds (and kinds/budgets)
    /// build bitwise-identical codes, which is what lets tenants share
    /// decode plans through the pool's fleet-wide cache.
    pub seed: u64,
    /// Evaluate the training loss every this many rounds.
    pub eval_every: usize,
    /// Drive the job through the double-buffered [`PipelinedDriver`]
    /// instead of the sequential [`TrainDriver`].
    pub pipelined: bool,
    /// React to pool-epoch changes by rebuilding the allocation against
    /// the pool's effective rates (sequential driver only — see
    /// [`LeasedEngine::with_rebalancing`]).
    pub rebalance: bool,
    /// SGD learning rate.
    pub learning_rate: f64,
}

impl JobSpec {
    /// A small heter-aware job with defaults sized for scheduler tests
    /// and benches: 6 rounds over a 64×4 synthetic regression, straggler
    /// budget 1, auto backend, seed 7.
    pub fn new(name: impl Into<String>) -> Self {
        JobSpec {
            name: name.into(),
            kind: SchemeKind::HeterAware,
            stragglers: 1,
            backend: CodecBackend::Auto,
            escalation: None,
            rounds: 6,
            dim: 4,
            samples: 64,
            seed: 7,
            eval_every: 1,
            pipelined: false,
            rebalance: false,
            learning_rate: 0.1,
        }
    }

    /// Sets the scheme family.
    pub fn with_kind(mut self, kind: SchemeKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the straggler budget.
    pub fn with_stragglers(mut self, stragglers: usize) -> Self {
        self.stragglers = stragglers;
        self
    }

    /// Sets the codec backend.
    pub fn with_backend(mut self, backend: CodecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets an explicit escalation policy.
    pub fn with_escalation(mut self, policy: EscalationPolicy) -> Self {
        self.escalation = Some(policy);
        self
    }

    /// Sets the round count.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the synthetic workload size.
    pub fn with_workload(mut self, samples: usize, dim: usize) -> Self {
        self.samples = samples;
        self.dim = dim;
        self
    }

    /// Sets the job's seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Drives the job through the pipelined (double-buffered) loop.
    pub fn pipelined(mut self) -> Self {
        self.pipelined = true;
        self
    }

    /// Enables epoch-driven rebalancing for this job.
    pub fn with_rebalancing(mut self) -> Self {
        self.rebalance = true;
        self
    }
}

/// One job's results, as collected by the scheduler.
#[derive(Debug)]
struct JobRun {
    outcome: TrainOutcome,
    telemetry: JobTelemetry,
    data_plane: PoolStats,
}

/// What one scheduler batch produced.
#[derive(Debug)]
pub struct SchedulerReport {
    /// Per-job training outcomes, in submission order.
    pub outcomes: Vec<TrainOutcome>,
    /// The fleet telemetry rollup across every job.
    pub fleet: FleetRollup,
    /// Wall-clock seconds for the whole batch (admission of the first
    /// job to completion of the last).
    pub wall_seconds: f64,
    /// Shared decode-plan cache lookups during this batch.
    pub cache_lookups: u64,
    /// Shared-cache hits during this batch (cross-tenant plan reuse).
    pub cache_hits: u64,
    /// Dense solves the shared cache performed during this batch — with
    /// tenants running identical schemes, strictly fewer than the
    /// lookups.
    pub cache_solves: u64,
    /// Data-plane buffer-pool counters merged across every job's decode
    /// session ([`PoolStats::merge`]).
    pub data_plane: PoolStats,
    /// Most jobs that actually held leases at once during the batch.
    pub peak_concurrent: usize,
}

impl SchedulerReport {
    /// Jobs completed per wall-clock second — the scheduled-vs-sequential
    /// headline (0 with no jobs or no elapsed time).
    pub fn jobs_per_sec(&self) -> f64 {
        if self.outcomes.is_empty() || self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.outcomes.len() as f64 / self.wall_seconds
        }
    }

    /// A one-line human summary of the batch.
    pub fn summary(&self) -> String {
        format!(
            "{} | wall={:.3}s jobs/s={:.2} peak={} cache: {}/{} hits, {} solves",
            self.fleet.summary(),
            self.wall_seconds,
            self.jobs_per_sec(),
            self.peak_concurrent,
            self.cache_hits,
            self.cache_lookups,
            self.cache_solves,
        )
    }
}

/// Admits and runs a batch of [`JobSpec`]s over one [`SharedWorkerPool`].
///
/// # Example
///
/// ```no_run
/// use hetgc_sched::{JobScheduler, JobSpec, SharedWorkerPool};
///
/// let pool = SharedWorkerPool::new(vec![1.0, 2.0, 2.0, 4.0]).with_max_concurrent(4);
/// let report = JobScheduler::new(pool)
///     .submit(JobSpec::new("tenant-a"))
///     .submit(JobSpec::new("tenant-b"))
///     .run()
///     .unwrap();
/// assert_eq!(report.outcomes.len(), 2);
/// ```
#[derive(Debug)]
pub struct JobScheduler {
    pool: SharedWorkerPool,
    jobs: Vec<JobSpec>,
    metrics: Option<MetricsRegistry>,
}

impl JobScheduler {
    /// A scheduler over `pool` with no jobs submitted yet.
    pub fn new(pool: SharedWorkerPool) -> Self {
        JobScheduler {
            pool,
            jobs: Vec::new(),
            metrics: None,
        }
    }

    /// Queues one job for the next batch.
    pub fn submit(mut self, spec: JobSpec) -> Self {
        self.jobs.push(spec);
        self
    }

    /// Reports every job's rounds into `registry`, each under its own
    /// `job` label ([`RunObserver`] families: round counters, latency and
    /// per-worker arrival histograms, wire bytes). Attach the same
    /// registry to a `hetgc_obs::MetricsServer` to scrape the whole
    /// batch live.
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// The pool this scheduler admits jobs onto.
    pub fn pool(&self) -> &SharedWorkerPool {
        &self.pool
    }

    /// Runs every submitted job concurrently (one thread per job; the
    /// pool's admission cap gates how many hold leases at once).
    ///
    /// # Errors
    ///
    /// The first job failure, verbatim.
    pub fn run(&self) -> Result<SchedulerReport, BoxError> {
        self.execute(true)
    }

    /// Runs every submitted job one at a time — the baseline a
    /// scheduled batch's [`SchedulerReport::jobs_per_sec`] is compared
    /// against.
    ///
    /// # Errors
    ///
    /// The first job failure, verbatim.
    pub fn run_sequential(&self) -> Result<SchedulerReport, BoxError> {
        self.execute(false)
    }

    fn execute(&self, concurrent: bool) -> Result<SchedulerReport, BoxError> {
        let cache = self.pool.shared_plans();
        let (lookups0, hits0, solves0) = (cache.lookups(), cache.hits(), cache.solves());
        let started = Instant::now();
        let runs: Vec<Result<JobRun, String>> = if concurrent {
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .jobs
                    .iter()
                    .map(|spec| {
                        let pool = &self.pool;
                        let metrics = self.metrics.as_ref();
                        s.spawn(move || run_job(pool, spec, metrics).map_err(|e| e.to_string()))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("job thread panicked"))
                    .collect()
            })
        } else {
            self.jobs
                .iter()
                .map(|spec| {
                    run_job(&self.pool, spec, self.metrics.as_ref()).map_err(|e| e.to_string())
                })
                .collect()
        };
        let wall_seconds = started.elapsed().as_secs_f64();

        let mut outcomes = Vec::with_capacity(runs.len());
        let mut fleet = FleetRollup::new();
        let mut data_plane = PoolStats::default();
        for run in runs {
            let run = run.map_err(BoxError::from)?;
            data_plane.merge(run.data_plane);
            fleet.absorb(run.telemetry);
            outcomes.push(run.outcome);
        }
        Ok(SchedulerReport {
            outcomes,
            fleet,
            wall_seconds,
            cache_lookups: cache.lookups() - lookups0,
            cache_hits: cache.hits() - hits0,
            cache_solves: cache.solves() - solves0,
            data_plane,
            peak_concurrent: self.pool.peak_active(),
        })
    }
}

/// Runs one job end to end: admit → build scheme/workload → spawn the
/// tenant cluster (shared-plan cache attached) → train → snapshot
/// telemetry and data-plane stats.
fn run_job(
    pool: &SharedWorkerPool,
    spec: &JobSpec,
    metrics: Option<&MetricsRegistry>,
) -> Result<JobRun, BoxError> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // The initial allocation targets the fleet's *base* rates — the spec
    // every tenant knows at admission — so equal-seeded jobs build
    // identical codes and share decode plans. Contention enters later,
    // through rebalancing against the effective rates.
    let scheme = scheme_from_estimates(
        spec.kind,
        pool.base_rates(),
        spec.stragglers,
        None,
        &mut rng,
    )?;
    let model = Arc::new(LinearRegression::new(spec.dim));
    let data = Arc::new(synthetic::linear_regression(
        spec.samples,
        spec.dim,
        0.01,
        &mut rng,
    ));
    let config = RuntimeConfig {
        behaviors: pool.behaviors().to_vec(),
        iteration_timeout: None,
        backend: spec.backend,
        escalation: spec.escalation.clone(),
        shared_plans: Some(pool.shared_plans()),
    };

    let lease = pool.lease();
    let started = Instant::now();
    let engine = ThreadedEngine::new(scheme.code, Arc::clone(&model), Arc::clone(&data), &config)?
        .with_label(spec.name.clone())
        .with_recoding(spec.kind, spec.stragglers);
    let mut leased = LeasedEngine::new(engine, lease).with_rebalancing(spec.rebalance);

    let driver_cfg = DriverConfig {
        eval_every: spec.eval_every,
        ..DriverConfig::default()
    }
    .with_job_id(spec.name.clone());
    let observer = metrics.map(|r| RunObserver::new(r, spec.name.as_str(), leased.workers()));
    let outcome = if spec.pipelined {
        let mut driver =
            PipelinedDriver::new(model.as_ref(), data.as_ref(), Sgd::new(spec.learning_rate))
                .with_config(driver_cfg);
        if let Some(obs) = observer {
            driver = driver.with_observer(obs);
        }
        driver.run(&mut leased, spec.rounds, &mut rng)?
    } else {
        let mut driver =
            TrainDriver::new(model.as_ref(), data.as_ref(), Sgd::new(spec.learning_rate))
                .with_config(driver_cfg);
        if let Some(obs) = observer {
            driver = driver.with_observer(obs);
        }
        driver.run(&mut leased, spec.rounds, &mut rng)?
    };

    let wall = started.elapsed().as_secs_f64();
    let telemetry =
        JobTelemetry::from_hub(spec.name.as_str(), leased.hub(), wall, leased.rebalances());
    let data_plane = leased.inner().cluster().pool_stats();
    Ok(JobRun {
        outcome,
        telemetry,
        data_plane,
    })
}
