//! # hetgc-sched
//!
//! An elastic multi-tenant job scheduler over a shared coded worker
//! pool: many concurrent training jobs — each with its own scheme,
//! codec backend, escalation policy and training loop — time-slice one
//! fleet of workers, sharing its decode-plan cache and rebalancing
//! their allocations as tenants come and go.
//!
//! The pieces, bottom up:
//!
//! * [`SharedWorkerPool`] — the logical fleet: base throughputs, worker
//!   behaviours, the fleet-wide
//!   [`hetgc_coding::SharedPlanCache`], an admission cap, and a ledger
//!   of every tenant's committed per-worker load. The ledger turns
//!   co-tenancy into *effective rates*
//!   ([`SharedWorkerPool::effective_rates_for`]): a worker carrying
//!   other tenants' partitions looks proportionally slower, which is
//!   exactly the heterogeneity signal the paper's Eq. 5 allocation
//!   reacts to.
//! * [`LeasedEngine`] — any `hetgc::RoundEngine` as a pool tenant:
//!   rebalances against the effective rates when the pool epoch moves
//!   (jobs arrived/finished/shifted load), commits its own loads back,
//!   and feeds per-round telemetry into a per-job
//!   [`hetgc_telemetry::TelemetryHub`].
//! * [`JobScheduler`] — admits a batch of [`JobSpec`]s, runs them
//!   concurrently (or sequentially as the baseline) and reports one
//!   [`SchedulerReport`]: per-job outcomes, the
//!   [`hetgc_telemetry::FleetRollup`], shared-cache reuse counters and
//!   merged data-plane statistics.
//!
//! Equal-seeded tenants build identical codes, so their decode plans
//! are solved **once fleet-wide** (the shared cache's singleflight) —
//! `tests/scheduler.rs` asserts both that reuse and the scheduled
//! batch's throughput edge over the sequential baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lease;
mod pool;
mod scheduler;

pub use lease::LeasedEngine;
pub use pool::{JobId, PoolLease, SharedWorkerPool};
pub use scheduler::{JobScheduler, JobSpec, SchedulerReport};
