//! Online drift detection over per-worker throughput observations.
//!
//! Two complementary detectors run per worker, both on the *relative*
//! deviation `d = rate/baseline − 1` against a slow-moving baseline:
//!
//! * **CUSUM step detection** — two one-sided cumulative sums
//!   `S⁺ ← max(0, S⁺ + d − slack)`, `S⁻ ← max(0, S⁻ − d − slack)` that
//!   accumulate only deviations beyond the `slack` dead-band and fire at
//!   `threshold`. A co-tenant landing (rate × 0.3) fires within a few
//!   rounds; estimation-noise-level jitter stays inside the dead-band and
//!   the sums keep resetting to zero.
//! * **Slow-drift EWMA divergence** — a fast EWMA tracking the live rate
//!   diverging from the slow baseline by more than `envelope` flags
//!   gradual drift that individual CUSUM increments would under-count.
//!
//! A fired worker stays *flagged* until [`DriftDetector::rebaseline`]
//! re-anchors the baselines — which the adaptation loop calls after a
//! successful re-code (the new allocation embodies the new rates, so the
//! old reference is obsolete).

/// Tuning of the per-worker drift detectors.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Observations per worker before the detectors judge (the first
    /// `min_samples` build the baseline).
    pub min_samples: usize,
    /// CUSUM dead-band: relative deviations below this are noise. Sized
    /// to the allocation's noise envelope (compute jitter / estimation
    /// noise σ), typically 1–2 σ.
    pub slack: f64,
    /// CUSUM firing threshold on the accumulated excess deviation.
    pub threshold: f64,
    /// Relative fast-vs-baseline EWMA divergence that flags slow drift.
    pub envelope: f64,
    /// Smoothing of the fast (live) EWMA.
    pub fast_alpha: f64,
    /// Smoothing of the slow baseline EWMA.
    pub slow_alpha: f64,
}

impl Default for DriftConfig {
    /// Dead-band 0.15, threshold 1.2, envelope 0.3, fast α 0.4,
    /// slow α 0.05, 3 warm-up samples — quiet under a few percent of
    /// jitter, fires within ~3 rounds on a 2× step.
    fn default() -> Self {
        DriftConfig {
            min_samples: 3,
            slack: 0.15,
            threshold: 1.2,
            envelope: 0.3,
            fast_alpha: 0.4,
            slow_alpha: 0.05,
        }
    }
}

impl DriftConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when a field is out of range (non-positive threshold /
    /// envelope, alphas outside `(0, 1]`, negative slack).
    fn validate(&self) {
        assert!(self.slack >= 0.0, "slack must be non-negative");
        assert!(self.threshold > 0.0, "threshold must be positive");
        assert!(self.envelope > 0.0, "envelope must be positive");
        for (name, a) in [
            ("fast_alpha", self.fast_alpha),
            ("slow_alpha", self.slow_alpha),
        ] {
            assert!(a > 0.0 && a <= 1.0, "{name} must be in (0, 1]");
        }
    }
}

/// What kind of drift fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Abrupt rate change caught by the CUSUM statistic.
    Step,
    /// Gradual divergence caught by the EWMA envelope.
    Slow,
}

/// One detector firing.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftEvent {
    /// The drifting worker.
    pub worker: usize,
    /// Step or slow drift.
    pub kind: DriftKind,
    /// Relative deviation `fast/baseline − 1` at firing time (negative =
    /// slowdown).
    pub magnitude: f64,
}

#[derive(Debug, Clone, Default)]
struct WorkerState {
    baseline: Option<f64>,
    fast: Option<f64>,
    cusum_pos: f64,
    cusum_neg: f64,
    count: usize,
    flagged: bool,
}

/// Per-worker CUSUM + EWMA-divergence drift detector (see the module
/// docs).
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DriftConfig,
    states: Vec<WorkerState>,
}

impl DriftDetector {
    /// A detector over `workers` workers.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range [`DriftConfig`].
    pub fn new(workers: usize, cfg: DriftConfig) -> Self {
        cfg.validate();
        DriftDetector {
            cfg,
            states: vec![WorkerState::default(); workers],
        }
    }

    /// Feeds one throughput observation for `worker`; returns the event
    /// if a detector fires on this observation. Out-of-range workers and
    /// invalid rates are ignored.
    pub fn observe(&mut self, worker: usize, rate: f64) -> Option<DriftEvent> {
        if !(rate.is_finite() && rate > 0.0) {
            return None;
        }
        let cfg = self.cfg.clone();
        let st = self.states.get_mut(worker)?;
        st.count += 1;
        let Some(baseline) = st.baseline else {
            st.baseline = Some(rate);
            st.fast = Some(rate);
            return None;
        };
        let fast = st.fast.unwrap_or(rate);
        let fast = (1.0 - cfg.fast_alpha) * fast + cfg.fast_alpha * rate;
        st.fast = Some(fast);
        if st.count <= cfg.min_samples {
            // Still warming up: the baseline absorbs early observations
            // quickly so a noisy first sample is not the reference forever.
            st.baseline = Some(0.5 * baseline + 0.5 * rate);
            return None;
        }
        let d = rate / baseline - 1.0;
        st.cusum_pos = (st.cusum_pos + d - cfg.slack).max(0.0);
        st.cusum_neg = (st.cusum_neg - d - cfg.slack).max(0.0);
        // The baseline keeps (slowly) tracking so that, long after a
        // missed or tolerated change, deviations are judged against the
        // new normal.
        st.baseline = Some((1.0 - cfg.slow_alpha) * baseline + cfg.slow_alpha * rate);
        let magnitude = fast / st.baseline.expect("just set") - 1.0;
        let fired = if st.cusum_pos > cfg.threshold || st.cusum_neg > cfg.threshold {
            Some(DriftKind::Step)
        } else if magnitude.abs() > cfg.envelope {
            Some(DriftKind::Slow)
        } else {
            None
        };
        let kind = fired?;
        let newly = !st.flagged;
        st.flagged = true;
        newly.then_some(DriftEvent {
            worker,
            kind,
            magnitude,
        })
    }

    /// Whether any worker is currently flagged as drifting (sticky until
    /// [`DriftDetector::rebaseline`]).
    pub fn drifting(&self) -> bool {
        self.states.iter().any(|s| s.flagged)
    }

    /// The currently flagged workers.
    pub fn flagged(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.flagged)
            .map(|(w, _)| w)
            .collect()
    }

    /// Re-anchors every worker's baseline to its current fast estimate
    /// and clears flags and CUSUM state — called after a successful
    /// re-code, when the new allocation already reflects the new rates.
    pub fn rebaseline(&mut self) {
        for st in &mut self.states {
            if let Some(fast) = st.fast {
                st.baseline = Some(fast);
            }
            st.cusum_pos = 0.0;
            st.cusum_neg = 0.0;
            st.flagged = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(det: &mut DriftDetector, worker: usize, rates: &[f64]) -> Vec<DriftEvent> {
        rates
            .iter()
            .filter_map(|&r| det.observe(worker, r))
            .collect()
    }

    #[test]
    fn quiet_on_constant_rates() {
        let mut det = DriftDetector::new(1, DriftConfig::default());
        assert!(feed(&mut det, 0, &[4.0; 40]).is_empty());
        assert!(!det.drifting());
    }

    #[test]
    fn fires_step_on_abrupt_slowdown() {
        let mut det = DriftDetector::new(2, DriftConfig::default());
        feed(&mut det, 0, &[4.0; 10]);
        let events = feed(&mut det, 0, &[1.2; 6]); // 0.3× step
        assert_eq!(events.len(), 1, "fires once, then stays flagged");
        assert_eq!(events[0].worker, 0);
        assert!(events[0].magnitude < -0.2, "{:?}", events[0]);
        assert!(det.drifting());
        assert_eq!(det.flagged(), vec![0]);
    }

    #[test]
    fn fires_on_speedup_too() {
        let mut det = DriftDetector::new(1, DriftConfig::default());
        feed(&mut det, 0, &[2.0; 10]);
        let events = feed(&mut det, 0, &[6.0; 6]);
        assert_eq!(events.len(), 1);
        assert!(events[0].magnitude > 0.2);
    }

    #[test]
    fn rebaseline_clears_and_accepts_new_normal() {
        let mut det = DriftDetector::new(1, DriftConfig::default());
        feed(&mut det, 0, &[4.0; 10]);
        assert!(!feed(&mut det, 0, &[1.2; 8]).is_empty());
        det.rebaseline();
        assert!(!det.drifting());
        // The new normal is 1.2: no re-fire.
        assert!(feed(&mut det, 0, &[1.2; 20]).is_empty());
    }

    #[test]
    fn small_jitter_stays_quiet() {
        // ±5 % alternation sits inside the dead-band forever.
        let mut det = DriftDetector::new(1, DriftConfig::default());
        let rates: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 4.2 } else { 3.8 })
            .collect();
        assert!(feed(&mut det, 0, &rates).is_empty());
    }

    #[test]
    fn slow_drift_eventually_flags() {
        // A gradual 1 %-per-round decay: individual deviations hide in
        // the dead-band at first, but the fast/slow divergence catches it.
        let mut det = DriftDetector::new(1, DriftConfig::default());
        let rates: Vec<f64> = (0..120).map(|i| 4.0 * 0.99f64.powi(i)).collect();
        let events = feed(&mut det, 0, &rates);
        assert!(!events.is_empty(), "slow drift must eventually flag");
    }

    #[test]
    fn invalid_observations_ignored() {
        let mut det = DriftDetector::new(1, DriftConfig::default());
        assert!(det.observe(0, f64::NAN).is_none());
        assert!(det.observe(0, -1.0).is_none());
        assert!(det.observe(5, 1.0).is_none()); // out of range
        assert!(!det.drifting());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_config_rejected() {
        DriftDetector::new(
            1,
            DriftConfig {
                threshold: 0.0,
                ..DriftConfig::default()
            },
        );
    }
}
