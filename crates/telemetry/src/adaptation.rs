//! The assembled feedback loop: hub → detectors → decisions.

use crate::deadline::DeadlineConfig;
use crate::drift::{DriftConfig, DriftDetector, DriftEvent};
use crate::hub::TelemetryHub;
use crate::recode::{RecodeConfig, RecodeController};
use crate::sample::RoundSample;

/// Everything the adaptation loop needs to know, in one plain-data
/// config — the value a training driver carries in its `DriverConfig`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationConfig {
    /// EWMA smoothing of the throughput estimator.
    pub ewma_alpha: f64,
    /// Learn the escalation deadline from arrival history and feed it to
    /// the engine each round. (Engines whose escalation ladder cannot
    /// fire ignore the learned deadline.)
    pub learn_deadline: bool,
    /// Rebuild the code from fresh estimates when drift is confirmed.
    pub recode_on_drift: bool,
    /// Deadline-learning knobs.
    pub deadline: DeadlineConfig,
    /// Drift-detection knobs.
    pub drift: DriftConfig,
    /// Re-code cadence knobs.
    pub recode: RecodeConfig,
}

impl Default for AdaptationConfig {
    /// Learn the deadline (p90 × 1.25) and re-code on confirmed drift.
    fn default() -> Self {
        AdaptationConfig {
            ewma_alpha: 0.4,
            learn_deadline: true,
            recode_on_drift: true,
            deadline: DeadlineConfig::default(),
            drift: DriftConfig::default(),
            recode: RecodeConfig::default(),
        }
    }
}

/// What the loop wants done after one observed round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdaptationDecision {
    /// Install this escalation deadline (seconds from round start) before
    /// the next round. `None` = keep whatever is installed.
    pub deadline: Option<f64>,
    /// Drift is confirmed and past cooldown: rebuild the code from fresh
    /// estimates now.
    pub recode: bool,
    /// Drift events that fired on this round's samples (newly flagged
    /// workers only).
    pub drift_events: Vec<DriftEvent>,
}

/// The assembled observation-and-adaptation pipeline:
/// [`TelemetryHub`] ingestion, [`DriftDetector`] over the per-sample
/// rates, the learned deadline over the hub's round-time window and
/// [`RecodeController`] cadence — one [`AdaptationDecision`] out per
/// round. The driver owns acting on the decision (installing the
/// deadline, asking its engine to re-code) and reports back through
/// [`Adaptation::recode_applied`] / [`Adaptation::recode_rejected`].
#[derive(Debug)]
pub struct Adaptation {
    cfg: AdaptationConfig,
    hub: TelemetryHub,
    detector: DriftDetector,
    recode: RecodeController,
}

impl Adaptation {
    /// A pipeline over `workers` workers.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range sub-configurations (delegated validation).
    pub fn new(workers: usize, cfg: AdaptationConfig) -> Self {
        cfg.deadline.validate();
        Adaptation {
            // The hub's round-time window doubles as the deadline
            // learner's arrival history: one window, one sort, no
            // duplicate state (see `DeadlineConfig::learned`).
            hub: TelemetryHub::new(workers, cfg.ewma_alpha, cfg.deadline.window),
            detector: DriftDetector::new(workers, cfg.drift.clone()),
            recode: RecodeController::new(cfg.recode.clone()),
            cfg,
        }
    }

    /// Observes one completed round and decides what to adapt.
    pub fn observe_round(
        &mut self,
        elapsed: f64,
        residual: f64,
        samples: &[RoundSample],
    ) -> AdaptationDecision {
        self.hub.ingest(elapsed, residual, samples);
        let mut events = Vec::new();
        for s in samples {
            if let Some(rate) = s.rate() {
                if let Some(event) = self.detector.observe(s.worker, rate) {
                    events.push(event);
                }
            }
        }
        let recode_now = self.recode.observe(self.detector.drifting());
        AdaptationDecision {
            deadline: self
                .cfg
                .learn_deadline
                .then(|| {
                    self.cfg.deadline.learned(
                        self.hub.round_quantile(self.cfg.deadline.target_quantile),
                        self.hub.rounds(),
                    )
                })
                .flatten(),
            recode: self.cfg.recode_on_drift && recode_now,
            drift_events: events,
        }
    }

    /// Fresh per-worker throughput estimates, falling back to
    /// `fallback[w]` for workers never observed (see
    /// [`TelemetryHub::estimates_or`]).
    pub fn estimates_or(&self, fallback: &[f64]) -> Vec<f64> {
        self.hub.estimates_or(fallback)
    }

    /// The driver installed a rebuilt code: re-anchor the drift baselines
    /// to the current estimates and start the re-code cooldown.
    pub fn recode_applied(&mut self) {
        self.recode.applied();
        self.detector.rebaseline();
    }

    /// The rebuild was rejected (infeasible estimates): count it, start
    /// the cooldown, keep the drift flags armed for a retry.
    pub fn recode_rejected(&mut self) {
        self.recode.rejected();
    }

    /// The telemetry hub (estimates, quantiles, counters).
    pub fn hub(&self) -> &TelemetryHub {
        &self.hub
    }

    /// The currently flagged (drifting) workers.
    pub fn flagged_workers(&self) -> Vec<usize> {
        self.detector.flagged()
    }

    /// Successful and rejected re-code attempts so far.
    pub fn recode_counts(&self) -> (usize, usize) {
        (self.recode.applied_count(), self.recode.rejected_count())
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdaptationConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_samples(rates: &[f64], work: f64) -> Vec<RoundSample> {
        rates
            .iter()
            .enumerate()
            .map(|(w, &r)| RoundSample::completed(w, work, work / r, work / r))
            .collect()
    }

    #[test]
    fn stationary_rounds_learn_a_deadline_and_stay_quiet() {
        let mut a = Adaptation::new(2, AdaptationConfig::default());
        let mut last = AdaptationDecision::default();
        for _ in 0..12 {
            last = a.observe_round(1.0, 0.0, &round_samples(&[4.0, 2.0], 8.0));
        }
        assert!(!last.recode);
        assert!(last.drift_events.is_empty());
        // p90 of constant 1.0 rounds × 1.25 margin.
        let d = last.deadline.expect("past warmup");
        assert!((d - 1.25).abs() < 1e-9, "{d}");
        assert_eq!(a.hub().rounds(), 12);
        assert_eq!(a.recode_counts(), (0, 0));
    }

    #[test]
    fn step_change_confirms_then_recodes_once_per_cooldown() {
        let mut a = Adaptation::new(2, AdaptationConfig::default());
        for _ in 0..10 {
            a.observe_round(1.0, 0.0, &round_samples(&[4.0, 4.0], 8.0));
        }
        let mut fired_at = Vec::new();
        for i in 0..10 {
            let d = a.observe_round(2.5, 0.0, &round_samples(&[4.0, 1.2], 8.0));
            if d.recode {
                fired_at.push(i);
                a.recode_applied();
            }
        }
        assert_eq!(
            fired_at.len(),
            1,
            "one confirmed re-code, then the rebaselined detector is quiet: {fired_at:?}"
        );
        assert_eq!(a.recode_counts().0, 1);
        assert_eq!(a.flagged_workers(), Vec::<usize>::new());
    }

    #[test]
    fn rejected_rebuild_retries_after_cooldown() {
        let cfg = AdaptationConfig {
            recode: RecodeConfig {
                confirm_rounds: 1,
                cooldown_rounds: 2,
            },
            ..AdaptationConfig::default()
        };
        let mut a = Adaptation::new(1, cfg);
        for _ in 0..8 {
            a.observe_round(1.0, 0.0, &round_samples(&[4.0], 8.0));
        }
        let mut attempts = 0;
        for _ in 0..10 {
            if a.observe_round(4.0, 0.0, &round_samples(&[0.8], 8.0))
                .recode
            {
                attempts += 1;
                a.recode_rejected();
            }
        }
        assert!(attempts >= 2, "stays armed across rejections: {attempts}");
        assert_eq!(a.recode_counts().1, attempts);
    }

    #[test]
    fn deadline_learning_can_be_disabled() {
        let cfg = AdaptationConfig {
            learn_deadline: false,
            ..AdaptationConfig::default()
        };
        let mut a = Adaptation::new(1, cfg);
        for _ in 0..20 {
            let d = a.observe_round(1.0, 0.0, &round_samples(&[4.0], 8.0));
            assert_eq!(d.deadline, None);
        }
        assert!(a.config().recode_on_drift);
    }
}
