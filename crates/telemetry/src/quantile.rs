//! A windowed quantile sketch over a stream of round times.

/// A fixed-capacity sliding window with nearest-rank quantile queries —
/// the arrival-history store behind the learned escalation deadline.
///
/// The window is deliberately small (tens of rounds): the controller must
/// track *recent* behaviour, and a sorted copy of ≤ a few hundred floats
/// is cheaper than a streaming sketch at these sizes.
#[derive(Debug, Clone)]
pub struct QuantileWindow {
    values: Vec<f64>,
    capacity: usize,
    /// Next slot to overwrite once the window is full (ring behaviour).
    next: usize,
}

impl QuantileWindow {
    /// An empty window holding at most `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        QuantileWindow {
            values: Vec::with_capacity(capacity),
            capacity,
            next: 0,
        }
    }

    /// Records one observation, evicting the oldest once full. Non-finite
    /// values are ignored.
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if self.values.len() < self.capacity {
            self.values.push(value);
        } else {
            self.values[self.next] = value;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the window holds no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest rank over the current
    /// window, or `None` when empty or `q` is out of range. Matches the
    /// convention of `hetgc_sim::RunMetrics::quantile`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let idx = (q * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[idx])
    }

    /// The median over the current window.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The 90th percentile over the current window.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.9)
    }

    /// The 99th percentile over the current window — the tail the
    /// escalation deadline and dashboards care about.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_over_partial_window() {
        let mut w = QuantileWindow::new(8);
        assert!(w.is_empty());
        assert_eq!(w.quantile(0.5), None);
        for v in [3.0, 1.0, 2.0] {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.quantile(0.0), Some(1.0));
        assert_eq!(w.quantile(0.5), Some(2.0));
        assert_eq!(w.quantile(1.0), Some(3.0));
        assert_eq!(w.quantile(1.5), None);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut w = QuantileWindow::new(3);
        for v in [10.0, 20.0, 30.0, 1.0] {
            w.push(v); // 10 evicted
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.quantile(0.0), Some(1.0));
        assert_eq!(w.quantile(1.0), Some(30.0));
        w.push(2.0); // 20 evicted
        assert_eq!(w.quantile(1.0), Some(30.0));
        w.push(3.0); // 30 evicted
        assert_eq!(w.quantile(1.0), Some(3.0));
    }

    #[test]
    fn percentile_shorthands() {
        let mut w = QuantileWindow::new(100);
        assert_eq!(w.p50(), None);
        for i in 1..=100 {
            w.push(i as f64);
        }
        // Nearest rank over an even count rounds the half-index up —
        // the `RunMetrics::quantile` convention this window matches.
        assert_eq!(w.p50(), Some(51.0));
        assert_eq!(w.p90(), Some(90.0));
        assert_eq!(w.p99(), Some(99.0));
    }

    #[test]
    fn non_finite_ignored() {
        let mut w = QuantileWindow::new(2);
        w.push(f64::INFINITY);
        w.push(f64::NAN);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        QuantileWindow::new(0);
    }
}
