//! The ingestion point: per-round samples in, live estimates and
//! arrival-history statistics out.

use hetgc_cluster::{EwmaEstimator, ThroughputEstimator};

use crate::quantile::QuantileWindow;
use crate::sample::RoundSample;

/// Collects [`RoundSample`]s from any round engine and maintains the
/// online views the adaptation controllers consume:
///
/// * a pluggable per-worker throughput estimator (default:
///   [`hetgc_cluster::EwmaEstimator`], tracking drifting speeds);
/// * a windowed quantile sketch of round-completion times (the
///   arrival history behind the learned escalation deadline);
/// * round/escalation counters.
pub struct TelemetryHub {
    workers: usize,
    estimator: Box<dyn ThroughputEstimator + Send>,
    round_times: QuantileWindow,
    rounds: usize,
    escalated_rounds: usize,
    samples_ingested: usize,
}

impl std::fmt::Debug for TelemetryHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHub")
            .field("workers", &self.workers)
            .field("rounds", &self.rounds)
            .field("escalated_rounds", &self.escalated_rounds)
            .field("samples_ingested", &self.samples_ingested)
            .finish_non_exhaustive()
    }
}

impl TelemetryHub {
    /// A hub over `workers` workers with an EWMA throughput estimator
    /// (smoothing `alpha`) and a round-time window of `window` rounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1` and `window > 0` (delegated
    /// validation).
    pub fn new(workers: usize, alpha: f64, window: usize) -> Self {
        TelemetryHub::with_estimator(
            workers,
            Box::new(EwmaEstimator::new(workers, alpha)),
            window,
        )
    }

    /// A hub over a caller-supplied estimator — the pluggable half: any
    /// [`ThroughputEstimator`] (cumulative sampling, EWMA, something
    /// custom) slots in.
    pub fn with_estimator(
        workers: usize,
        estimator: Box<dyn ThroughputEstimator + Send>,
        window: usize,
    ) -> Self {
        TelemetryHub {
            workers,
            estimator,
            round_times: QuantileWindow::new(window),
            rounds: 0,
            escalated_rounds: 0,
            samples_ingested: 0,
        }
    }

    /// Ingests one completed round: its wall time, its decode residual
    /// (positive = the escalation ladder's approximate stage fired) and
    /// the per-worker samples the engine observed.
    pub fn ingest(&mut self, elapsed: f64, residual: f64, samples: &[RoundSample]) {
        self.rounds += 1;
        if residual > 0.0 {
            self.escalated_rounds += 1;
        }
        self.round_times.push(elapsed);
        for s in samples {
            if s.rate().is_some() {
                self.estimator
                    .observe(s.worker, s.work_units, s.compute_seconds);
                self.samples_ingested += 1;
            }
        }
    }

    /// Number of workers the hub tracks.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Completed rounds ingested so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Rounds whose decode carried a positive residual.
    pub fn escalated_rounds(&self) -> usize {
        self.escalated_rounds
    }

    /// Valid per-worker samples ingested so far.
    pub fn samples_ingested(&self) -> usize {
        self.samples_ingested
    }

    /// The current throughput estimate for one worker, if it has been
    /// observed.
    pub fn estimate(&self, worker: usize) -> Option<f64> {
        self.estimator.estimate(worker).ok()
    }

    /// Per-worker throughput estimates, substituting `fallback[w]` for
    /// workers with no observations yet (a dead worker keeps the estimate
    /// the allocation was originally built from). With `fallback` shorter
    /// than the worker count, unobserved workers past its end get the
    /// mean of the observed estimates.
    pub fn estimates_or(&self, fallback: &[f64]) -> Vec<f64> {
        let observed: Vec<Option<f64>> = (0..self.workers)
            .map(|w| self.estimator.estimate(w).ok())
            .collect();
        let mean = {
            let known: Vec<f64> = observed.iter().filter_map(|e| *e).collect();
            if known.is_empty() {
                1.0
            } else {
                known.iter().sum::<f64>() / known.len() as f64
            }
        };
        observed
            .iter()
            .enumerate()
            .map(|(w, e)| e.unwrap_or_else(|| fallback.get(w).copied().unwrap_or(mean)))
            .collect()
    }

    /// The `q`-quantile of recent round-completion times.
    pub fn round_quantile(&self, q: f64) -> Option<f64> {
        self.round_times.quantile(q)
    }

    /// Median recent round-completion time, straight off the window —
    /// dashboards and the metrics registry read these instead of
    /// re-deriving quantiles from raw samples.
    pub fn round_p50(&self) -> Option<f64> {
        self.round_times.p50()
    }

    /// 90th-percentile recent round-completion time.
    pub fn round_p90(&self) -> Option<f64> {
        self.round_times.p90()
    }

    /// 99th-percentile recent round-completion time — the tail the
    /// learned escalation deadline tracks.
    pub fn round_p99(&self) -> Option<f64> {
        self.round_times.p99()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgc_cluster::SamplingEstimator;

    #[test]
    fn ingest_feeds_estimator_and_window() {
        let mut hub = TelemetryHub::new(2, 0.5, 8);
        hub.ingest(
            2.0,
            0.0,
            &[
                RoundSample::completed(0, 10.0, 2.0, 2.0),
                RoundSample::completed(1, 10.0, 1.0, 1.0),
            ],
        );
        assert_eq!(hub.rounds(), 1);
        assert_eq!(hub.samples_ingested(), 2);
        assert_eq!(hub.estimate(0), Some(5.0));
        assert_eq!(hub.estimate(1), Some(10.0));
        assert_eq!(hub.round_quantile(1.0), Some(2.0));
        assert_eq!(hub.escalated_rounds(), 0);
    }

    #[test]
    fn escalated_rounds_counted_and_failures_skipped() {
        let mut hub = TelemetryHub::new(2, 0.5, 8);
        hub.ingest(
            3.0,
            0.4,
            &[
                RoundSample::completed(0, 10.0, 2.0, 2.0),
                RoundSample::failed(1, 10.0),
            ],
        );
        assert_eq!(hub.escalated_rounds(), 1);
        assert_eq!(hub.samples_ingested(), 1);
        assert_eq!(hub.estimate(1), None);
    }

    #[test]
    fn estimates_or_fills_unobserved_from_fallback_then_mean() {
        let mut hub = TelemetryHub::new(3, 0.5, 8);
        hub.ingest(1.0, 0.0, &[RoundSample::completed(0, 6.0, 2.0, 2.0)]);
        // Worker 1 falls back to the provided rate, worker 2 (past the
        // fallback slice) to the mean of observed estimates.
        assert_eq!(hub.estimates_or(&[9.0, 7.0]), vec![3.0, 7.0, 3.0]);
        // No fallback at all: mean everywhere unobserved.
        assert_eq!(hub.estimates_or(&[]), vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn percentile_accessors_match_quantile() {
        let mut hub = TelemetryHub::new(1, 0.5, 16);
        assert_eq!(hub.round_p50(), None);
        for i in 1..=10 {
            hub.ingest(i as f64, 0.0, &[]);
        }
        assert_eq!(hub.round_p50(), hub.round_quantile(0.5));
        assert_eq!(hub.round_p90(), hub.round_quantile(0.9));
        assert_eq!(hub.round_p99(), hub.round_quantile(0.99));
        assert_eq!(hub.round_p99(), Some(10.0));
    }

    #[test]
    fn pluggable_estimator() {
        let mut hub = TelemetryHub::with_estimator(1, Box::new(SamplingEstimator::new(1)), 4);
        hub.ingest(1.0, 0.0, &[RoundSample::completed(0, 2.0, 1.0, 1.0)]);
        hub.ingest(1.0, 0.0, &[RoundSample::completed(0, 6.0, 1.0, 1.0)]);
        // Cumulative: 8 work / 2 s.
        assert_eq!(hub.estimate(0), Some(4.0));
        assert!(format!("{hub:?}").contains("TelemetryHub"));
    }
}
