//! # hetgc-telemetry
//!
//! The observation-and-adaptation subsystem that closes the
//! heterogeneity loop: the paper's schemes allocate work from throughput
//! estimates sampled *once* (§III-C) and hedge against noise (§V); this
//! crate feeds what a training run actually *observes* back into the
//! allocation, the escalation deadline and the codec.
//!
//! The feedback loop, per collect round:
//!
//! ```text
//!             ┌────────────────────────────────────────────────┐
//!             │                 RoundEngine                    │
//!   rounds ──▶│  (sim-BSP, coded-SSP, threaded runtime)        │──▶ RoundSample*
//!             └────────────────────────────────────────────────┘        │
//!        ▲ set_deadline / recode                                        ▼
//!        │                                                    ┌──────────────────┐
//!   ┌──────────────┐   estimates   ┌───────────────┐  rates   │   TelemetryHub   │
//!   │ TrainDriver  │◀──────────────│ DriftDetector │◀─────────│ (EWMA estimator, │
//!   │ (acts on the │               │ (CUSUM + EWMA │          │ quantile window) │
//!   │  decision)   │◀─ deadline ───│  divergence)  │          └──────────────────┘
//!   └──────────────┘               └───────────────┘   ▲ round times     │
//!        ▲                                 │           └──────────────────┘
//!        └──── AdaptationDecision ◀── RecodeController + DeadlineController
//! ```
//!
//! * [`RoundSample`] — one worker's compute/arrival observation.
//! * [`TelemetryHub`] — ingestion: pluggable
//!   [`hetgc_cluster::ThroughputEstimator`] (EWMA by default) plus a
//!   windowed quantile sketch of round times ([`QuantileWindow`]).
//! * [`DriftDetector`] — per-worker CUSUM step detection and slow-drift
//!   EWMA divergence against the allocation's noise envelope.
//! * [`DeadlineController`] — learns the escalation deadline as a target
//!   quantile of observed round-completion times, replacing the static
//!   `EscalationPolicy::with_deadline` knob.
//! * [`RecodeController`] — debounces confirmed drift into re-code
//!   triggers with a cooldown; the consuming engine owns the actual
//!   Eq. 5 → Eq. 6 → Alg. 1/3 rebuild and codec hot-swap.
//! * [`Adaptation`] / [`AdaptationConfig`] — the assembled pipeline a
//!   training driver runs each round.
//!
//! This crate sits *below* the training stack on purpose: it knows
//! workers, rates and rounds — not schemes, codecs or engines — so every
//! execution path (simulated BSP, coded SSP, the threaded runtime) can
//! feed it without layering cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptation;
mod deadline;
mod drift;
mod fleet;
mod hub;
mod quantile;
mod recode;
mod sample;

pub use adaptation::{Adaptation, AdaptationConfig, AdaptationDecision};
pub use deadline::{DeadlineConfig, DeadlineController};
pub use drift::{DriftConfig, DriftDetector, DriftEvent, DriftKind};
pub use fleet::{FleetRollup, JobTelemetry};
pub use hub::TelemetryHub;
pub use quantile::QuantileWindow;
pub use recode::{RecodeConfig, RecodeController};
pub use sample::RoundSample;
