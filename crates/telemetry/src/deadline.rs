//! Learning the escalation deadline from arrival history.

use crate::quantile::QuantileWindow;

/// Tuning of the learned escalation deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineConfig {
    /// The quantile of recent round-completion times the deadline
    /// targets (0.9 = "escalate once a round runs longer than 90 % of
    /// recent rounds did").
    pub target_quantile: f64,
    /// Safety margin multiplied onto the quantile so ordinary rounds
    /// still complete exactly.
    pub margin: f64,
    /// Rounds observed before a deadline is proposed at all.
    pub warmup_rounds: usize,
    /// Sliding-window size (rounds) of the underlying quantile sketch.
    pub window: usize,
}

impl Default for DeadlineConfig {
    /// p90 of the last 64 rounds × 1.25, after 8 warm-up rounds.
    fn default() -> Self {
        DeadlineConfig {
            target_quantile: 0.9,
            margin: 1.25,
            warmup_rounds: 8,
            window: 64,
        }
    }
}

impl DeadlineConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when `target_quantile` is outside `[0, 1]` or `margin` is
    /// not positive (`window` is validated by the sketch it sizes).
    pub(crate) fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.target_quantile),
            "target_quantile must be in [0, 1]"
        );
        assert!(
            self.margin.is_finite() && self.margin > 0.0,
            "margin must be positive"
        );
    }

    /// The ONE deadline formula — `quantile × margin` once past warm-up —
    /// shared by [`DeadlineController`] and any caller that already holds
    /// a round-time quantile (the assembled `Adaptation` pipeline reads
    /// its `TelemetryHub`'s window instead of keeping a duplicate).
    pub fn learned(&self, round_quantile: Option<f64>, rounds_observed: usize) -> Option<f64> {
        if rounds_observed < self.warmup_rounds {
            return None;
        }
        round_quantile.map(|q| q * self.margin)
    }
}

/// Learns the escalation deadline as a target quantile of observed
/// round-completion times — replacing the static
/// `EscalationPolicy::with_deadline` knob with a value that tracks what
/// the cluster actually does. Feed every completed round's duration in;
/// read [`DeadlineController::deadline`] out each round.
#[derive(Debug, Clone)]
pub struct DeadlineController {
    cfg: DeadlineConfig,
    window: QuantileWindow,
    rounds: usize,
}

impl DeadlineController {
    /// A controller with no observations yet.
    ///
    /// # Panics
    ///
    /// Panics when `target_quantile` is outside `[0, 1]`, `margin` is not
    /// positive, or `window` is zero.
    pub fn new(cfg: DeadlineConfig) -> Self {
        cfg.validate();
        let window = QuantileWindow::new(cfg.window);
        DeadlineController {
            cfg,
            window,
            rounds: 0,
        }
    }

    /// Records one completed round's duration.
    pub fn observe(&mut self, round_seconds: f64) {
        if round_seconds.is_finite() && round_seconds > 0.0 {
            self.rounds += 1;
            self.window.push(round_seconds);
        }
    }

    /// The learned deadline — `quantile(target) × margin` over the recent
    /// window — or `None` during warm-up.
    pub fn deadline(&self) -> Option<f64> {
        self.cfg
            .learned(self.window.quantile(self.cfg.target_quantile), self.rounds)
    }

    /// The configuration in force.
    pub fn config(&self) -> &DeadlineConfig {
        &self.cfg
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_withholds_the_deadline() {
        let mut c = DeadlineController::new(DeadlineConfig::default());
        for _ in 0..7 {
            c.observe(1.0);
        }
        assert_eq!(c.deadline(), None);
        c.observe(1.0);
        assert_eq!(c.deadline(), Some(1.25));
    }

    #[test]
    fn deadline_tracks_the_target_quantile() {
        let cfg = DeadlineConfig {
            target_quantile: 0.5,
            margin: 1.0,
            warmup_rounds: 1,
            window: 101,
        };
        let mut c = DeadlineController::new(cfg);
        for i in 0..101 {
            c.observe(1.0 + i as f64); // 1..=101
        }
        assert_eq!(c.deadline(), Some(51.0));
        assert_eq!(c.rounds(), 101);
    }

    #[test]
    fn window_forgets_old_regimes() {
        let cfg = DeadlineConfig {
            target_quantile: 1.0,
            margin: 1.0,
            warmup_rounds: 1,
            window: 4,
        };
        let mut c = DeadlineController::new(cfg);
        for _ in 0..4 {
            c.observe(10.0);
        }
        assert_eq!(c.deadline(), Some(10.0));
        for _ in 0..4 {
            c.observe(2.0);
        }
        assert_eq!(c.deadline(), Some(2.0), "old regime evicted");
    }

    #[test]
    fn invalid_observations_ignored() {
        let mut c = DeadlineController::new(DeadlineConfig {
            warmup_rounds: 1,
            ..DeadlineConfig::default()
        });
        c.observe(f64::INFINITY);
        c.observe(-1.0);
        assert_eq!(c.deadline(), None);
        assert_eq!(c.config().warmup_rounds, 1);
    }

    #[test]
    #[should_panic(expected = "target_quantile")]
    fn bad_quantile_rejected() {
        DeadlineController::new(DeadlineConfig {
            target_quantile: 1.5,
            ..DeadlineConfig::default()
        });
    }
}
