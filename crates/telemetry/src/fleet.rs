//! Fleet-level telemetry rollup for multi-job serving: one
//! [`JobTelemetry`] snapshot per finished (or still-running) job,
//! aggregated by [`FleetRollup`] into the numbers a scheduler's operator
//! cares about — total rounds, fleet escalation rate, makespan and job
//! throughput.
//!
//! Like the rest of this crate, the rollup knows *workers, rounds and
//! seconds* — not schemes, codecs or engines — so the scheduler layer can
//! feed it from any execution substrate.

use crate::hub::TelemetryHub;

/// A point-in-time summary of one job's telemetry, snapshot from the
/// job's [`TelemetryHub`] (plus the wall-clock and rebalance counters
/// only the scheduler knows).
#[derive(Debug, Clone, PartialEq)]
pub struct JobTelemetry {
    /// The job's identifier (matches `RoundRecord.job_id` in interleaved
    /// JSONL streams).
    pub job_id: String,
    /// Completed collect rounds.
    pub rounds: usize,
    /// Rounds whose decode carried a positive residual (the escalation
    /// ladder's approximate stage fired).
    pub escalated_rounds: usize,
    /// Valid per-worker samples ingested.
    pub samples_ingested: usize,
    /// Median of recent round-completion times, when any were observed.
    pub median_round_time: Option<f64>,
    /// 95th-percentile round-completion time, when observed.
    pub p95_round_time: Option<f64>,
    /// Wall-clock seconds from the job's admission to this snapshot.
    pub wall_seconds: f64,
    /// How many times the scheduler re-balanced (re-coded) this job's
    /// allocation while it ran.
    pub rebalances: usize,
}

impl JobTelemetry {
    /// Snapshots `hub` as job `job_id`'s summary. `wall_seconds` and
    /// `rebalances` come from the scheduler (the hub does not track
    /// wall-clock or allocation changes).
    pub fn from_hub(
        job_id: impl Into<String>,
        hub: &TelemetryHub,
        wall_seconds: f64,
        rebalances: usize,
    ) -> Self {
        JobTelemetry {
            job_id: job_id.into(),
            rounds: hub.rounds(),
            escalated_rounds: hub.escalated_rounds(),
            samples_ingested: hub.samples_ingested(),
            median_round_time: hub.round_quantile(0.5),
            p95_round_time: hub.round_quantile(0.95),
            wall_seconds,
            rebalances,
        }
    }

    /// Rounds per wall-clock second (0 when no time has elapsed).
    pub fn rounds_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.rounds as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Aggregates [`JobTelemetry`] snapshots across a fleet of concurrent
/// jobs into scheduler-level statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetRollup {
    jobs: Vec<JobTelemetry>,
}

impl FleetRollup {
    /// An empty rollup.
    pub fn new() -> Self {
        FleetRollup::default()
    }

    /// Absorbs one job's snapshot.
    pub fn absorb(&mut self, job: JobTelemetry) {
        self.jobs.push(job);
    }

    /// The absorbed per-job snapshots, in absorption order.
    pub fn jobs(&self) -> &[JobTelemetry] {
        &self.jobs
    }

    /// Completed rounds across every job.
    pub fn total_rounds(&self) -> usize {
        self.jobs.iter().map(|j| j.rounds).sum()
    }

    /// Escalated rounds across every job.
    pub fn total_escalated(&self) -> usize {
        self.jobs.iter().map(|j| j.escalated_rounds).sum()
    }

    /// Per-worker samples ingested across every job.
    pub fn total_samples(&self) -> usize {
        self.jobs.iter().map(|j| j.samples_ingested).sum()
    }

    /// Scheduler-level rebalances across every job.
    pub fn total_rebalances(&self) -> usize {
        self.jobs.iter().map(|j| j.rebalances).sum()
    }

    /// Fraction of all rounds that escalated (`0.0` with no rounds).
    pub fn escalation_rate(&self) -> f64 {
        let total = self.total_rounds();
        if total == 0 {
            0.0
        } else {
            self.total_escalated() as f64 / total as f64
        }
    }

    /// The longest per-job wall time — with jobs admitted together, the
    /// fleet's makespan.
    pub fn makespan(&self) -> f64 {
        self.jobs.iter().map(|j| j.wall_seconds).fold(0.0, f64::max)
    }

    /// Jobs completed per second of makespan — the end-to-end throughput
    /// a scheduler's bench compares against a sequential baseline (`0.0`
    /// with no jobs or no elapsed time).
    pub fn jobs_per_sec(&self) -> f64 {
        let makespan = self.makespan();
        if self.jobs.is_empty() || makespan <= 0.0 {
            0.0
        } else {
            self.jobs.len() as f64 / makespan
        }
    }

    /// The worst (largest) per-job p95 round time observed, if any job
    /// reported one — the fleet's tail-latency headline.
    pub fn worst_p95(&self) -> Option<f64> {
        self.jobs
            .iter()
            .filter_map(|j| j.p95_round_time)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// A one-line human summary (`jobs=… rounds=… esc=…% jobs/s=…`).
    pub fn summary(&self) -> String {
        format!(
            "jobs={} rounds={} esc={:.1}% rebalances={} makespan={:.3}s jobs/s={:.2}",
            self.jobs.len(),
            self.total_rounds(),
            100.0 * self.escalation_rate(),
            self.total_rebalances(),
            self.makespan(),
            self.jobs_per_sec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::RoundSample;

    fn hub_with_rounds(rounds: usize, escalated: usize) -> TelemetryHub {
        let mut hub = TelemetryHub::new(2, 0.5, 16);
        for i in 0..rounds {
            let residual = if i < escalated { 0.5 } else { 0.0 };
            hub.ingest(
                1.0 + i as f64,
                residual,
                &[RoundSample::completed(0, 4.0, 1.0, 1.0)],
            );
        }
        hub
    }

    #[test]
    fn job_snapshot_mirrors_hub() {
        let hub = hub_with_rounds(4, 1);
        let job = JobTelemetry::from_hub("job-a", &hub, 2.0, 1);
        assert_eq!(job.rounds, 4);
        assert_eq!(job.escalated_rounds, 1);
        assert_eq!(job.samples_ingested, 4);
        assert_eq!(job.rebalances, 1);
        assert!(job.median_round_time.is_some());
        assert_eq!(job.rounds_per_sec(), 2.0);
        // Zero elapsed never divides by zero.
        let frozen = JobTelemetry::from_hub("z", &hub, 0.0, 0);
        assert_eq!(frozen.rounds_per_sec(), 0.0);
    }

    #[test]
    fn rollup_aggregates_across_jobs() {
        let mut fleet = FleetRollup::new();
        fleet.absorb(JobTelemetry::from_hub("a", &hub_with_rounds(4, 1), 2.0, 0));
        fleet.absorb(JobTelemetry::from_hub("b", &hub_with_rounds(6, 0), 3.0, 2));
        assert_eq!(fleet.jobs().len(), 2);
        assert_eq!(fleet.total_rounds(), 10);
        assert_eq!(fleet.total_escalated(), 1);
        assert_eq!(fleet.total_rebalances(), 2);
        assert!((fleet.escalation_rate() - 0.1).abs() < 1e-12);
        assert_eq!(fleet.makespan(), 3.0);
        // 2 jobs over a 3 s makespan.
        assert!((fleet.jobs_per_sec() - 2.0 / 3.0).abs() < 1e-12);
        assert!(fleet.worst_p95().is_some());
        let s = fleet.summary();
        assert!(s.contains("jobs=2"), "{s}");
        assert!(s.contains("rounds=10"), "{s}");
    }

    #[test]
    fn empty_rollup_is_inert() {
        let fleet = FleetRollup::new();
        assert_eq!(fleet.total_rounds(), 0);
        assert_eq!(fleet.escalation_rate(), 0.0);
        assert_eq!(fleet.jobs_per_sec(), 0.0);
        assert_eq!(fleet.makespan(), 0.0);
        assert!(fleet.worst_p95().is_none());
    }
}
