//! When to rebuild the code: drift confirmation and re-code cadence.

/// Tuning of the re-code trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct RecodeConfig {
    /// Consecutive drifting rounds required before a re-code fires
    /// (debounce against one-round blips the straggler budget already
    /// absorbs).
    pub confirm_rounds: usize,
    /// Minimum rounds between re-code attempts, successful or not (the
    /// estimator needs fresh post-change samples before a retry can do
    /// better).
    pub cooldown_rounds: usize,
}

impl Default for RecodeConfig {
    /// Confirm over 2 rounds, then at most one attempt every 5 rounds.
    fn default() -> Self {
        RecodeConfig {
            confirm_rounds: 2,
            cooldown_rounds: 5,
        }
    }
}

/// Decides *when* the allocation is rebuilt; the engines own *how* (the
/// Eq. 5 → Eq. 6 → Alg. 1/3 reconstruction from fresh estimates and the
/// codec hot-swap). The controller debounces the drift signal, enforces a
/// cooldown between attempts, and keeps the attempt/failure counters the
/// run report exposes.
#[derive(Debug, Clone)]
pub struct RecodeController {
    cfg: RecodeConfig,
    round: usize,
    consecutive_drifting: usize,
    last_attempt_round: Option<usize>,
    applied: usize,
    rejected: usize,
}

impl RecodeController {
    /// A controller with no history.
    pub fn new(cfg: RecodeConfig) -> Self {
        RecodeController {
            cfg,
            round: 0,
            consecutive_drifting: 0,
            last_attempt_round: None,
            applied: 0,
            rejected: 0,
        }
    }

    /// Advances one round with the detector's current drift verdict;
    /// returns `true` when a re-code should be attempted *now*.
    pub fn observe(&mut self, drifting: bool) -> bool {
        self.round += 1;
        if drifting {
            self.consecutive_drifting += 1;
        } else {
            self.consecutive_drifting = 0;
        }
        if self.consecutive_drifting < self.cfg.confirm_rounds.max(1) {
            return false;
        }
        !matches!(
            self.last_attempt_round,
            Some(last) if self.round - last < self.cfg.cooldown_rounds.max(1)
        )
    }

    /// Records that the re-code fired and the new code was installed.
    pub fn applied(&mut self) {
        self.applied += 1;
        self.last_attempt_round = Some(self.round);
        self.consecutive_drifting = 0;
    }

    /// Records that the re-code fired but the rebuild was rejected
    /// (infeasible estimates, backend failure) — the run keeps the old
    /// code and the controller stays armed past the cooldown.
    pub fn rejected(&mut self) {
        self.rejected += 1;
        self.last_attempt_round = Some(self.round);
    }

    /// Successful re-codes so far.
    pub fn applied_count(&self) -> usize {
        self.applied
    }

    /// Rejected re-code attempts so far.
    pub fn rejected_count(&self) -> usize {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confirms_before_firing() {
        let mut c = RecodeController::new(RecodeConfig {
            confirm_rounds: 3,
            cooldown_rounds: 1,
        });
        assert!(!c.observe(true));
        assert!(!c.observe(true));
        assert!(c.observe(true), "third consecutive drifting round fires");
    }

    #[test]
    fn blips_reset_confirmation() {
        let mut c = RecodeController::new(RecodeConfig {
            confirm_rounds: 2,
            cooldown_rounds: 1,
        });
        assert!(!c.observe(true));
        assert!(!c.observe(false));
        assert!(!c.observe(true));
        assert!(c.observe(true));
    }

    #[test]
    fn cooldown_spaces_attempts() {
        let mut c = RecodeController::new(RecodeConfig {
            confirm_rounds: 1,
            cooldown_rounds: 3,
        });
        assert!(c.observe(true));
        c.applied();
        assert_eq!(c.applied_count(), 1);
        // Drift persists (e.g. the rebuild was imperfect): cooldown holds.
        assert!(!c.observe(true));
        assert!(!c.observe(true));
        assert!(c.observe(true), "cooldown elapsed");
    }

    #[test]
    fn rejection_counts_and_stays_armed() {
        let mut c = RecodeController::new(RecodeConfig {
            confirm_rounds: 1,
            cooldown_rounds: 2,
        });
        assert!(c.observe(true));
        c.rejected();
        assert_eq!(c.rejected_count(), 1);
        assert!(!c.observe(true));
        assert!(c.observe(true), "retries after cooldown");
    }
}
