//! The observation unit: what one worker did in one collect round.

/// One worker's contribution to one collect round, as observed by the
/// master — the unit every `RoundEngine` (simulated or threaded) emits
/// into the [`TelemetryHub`](crate::TelemetryHub).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSample {
    /// The worker.
    pub worker: usize,
    /// Work units the worker was assigned this round (samples,
    /// partitions × partition size — any unit consistent across rounds).
    pub work_units: f64,
    /// Seconds the worker spent producing its result (simulated compute
    /// time, or wall-clock from broadcast to reply on the threaded path).
    /// Injected straggler delay contaminates this exactly as it would in
    /// production — the estimators see what the master sees.
    pub compute_seconds: f64,
    /// When the result reached the master, relative to the round start;
    /// `None` when it never arrived.
    pub arrival_seconds: Option<f64>,
    /// The result arrived after the master had already decoded (late,
    /// unused).
    pub straggled: bool,
    /// The worker never responded this round.
    pub failed: bool,
}

impl RoundSample {
    /// A sample for a worker whose result reached the master.
    pub fn completed(worker: usize, work_units: f64, compute_seconds: f64, arrival: f64) -> Self {
        RoundSample {
            worker,
            work_units,
            compute_seconds,
            arrival_seconds: Some(arrival),
            straggled: false,
            failed: false,
        }
    }

    /// A sample for a worker that never responded this round.
    pub fn failed(worker: usize, work_units: f64) -> Self {
        RoundSample {
            worker,
            work_units,
            compute_seconds: f64::INFINITY,
            arrival_seconds: None,
            straggled: false,
            failed: true,
        }
    }

    /// Marks the sample as having arrived too late to carry decode
    /// weight.
    pub fn late(mut self) -> Self {
        self.straggled = true;
        self
    }

    /// The observed throughput `work/compute`, when the sample carries a
    /// valid timing (finite, positive compute over non-negative work).
    pub fn rate(&self) -> Option<f64> {
        (self.compute_seconds.is_finite()
            && self.compute_seconds > 0.0
            && self.work_units >= 0.0
            && !self.failed)
            .then(|| self.work_units / self.compute_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completed_sample_has_rate() {
        let s = RoundSample::completed(2, 12.0, 3.0, 3.5);
        assert_eq!(s.rate(), Some(4.0));
        assert!(!s.failed && !s.straggled);
        assert_eq!(s.arrival_seconds, Some(3.5));
    }

    #[test]
    fn failed_sample_has_no_rate() {
        let s = RoundSample::failed(0, 12.0);
        assert_eq!(s.rate(), None);
        assert!(s.failed);
        assert_eq!(s.arrival_seconds, None);
    }

    #[test]
    fn late_flag_keeps_rate() {
        let s = RoundSample::completed(1, 8.0, 2.0, 9.0).late();
        assert!(s.straggled);
        assert_eq!(s.rate(), Some(4.0));
    }

    #[test]
    fn degenerate_timings_are_invalid() {
        let mut s = RoundSample::completed(0, 8.0, 0.0, 0.0);
        assert_eq!(s.rate(), None);
        s.compute_seconds = f64::NAN;
        assert_eq!(s.rate(), None);
    }
}
