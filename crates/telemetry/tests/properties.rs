//! Property-based tests of the adaptation controllers: the deadline
//! learner converges to its target quantile on stationary arrivals, and
//! the drift detector separates real rate steps from
//! estimation-noise-level jitter.

use hetgc_cluster::EstimationNoise;
use hetgc_sim::RateDrift;
use hetgc_telemetry::{DeadlineConfig, DeadlineController, DriftConfig, DriftDetector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn stationary_times() -> impl Strategy<Value = (Vec<f64>, u64)> {
    // 120 iid round times: base in [0.5, 4), relative spread up to 30 %.
    (0.5f64..4.0, 0.0f64..0.3, any::<u64>()).prop_flat_map(|(base, spread, seed)| {
        (
            prop::collection::vec(0.0f64..1.0, 120).prop_map(move |us| {
                us.iter()
                    .map(|u| base * (1.0 + spread * (u - 0.5)))
                    .collect()
            }),
            Just(seed),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On stationary arrivals the learned deadline converges to the
    /// empirical target quantile (× margin) of the recent window.
    #[test]
    fn deadline_converges_to_target_quantile((times, _seed) in stationary_times()) {
        let cfg = DeadlineConfig {
            target_quantile: 0.9,
            margin: 1.0,
            warmup_rounds: 8,
            window: 64,
        };
        let mut ctl = DeadlineController::new(cfg);
        for &t in &times {
            ctl.observe(t);
        }
        let learned = ctl.deadline().expect("past warmup");
        // Empirical nearest-rank p90 of the last 64 observations.
        let mut window: Vec<f64> = times[times.len() - 64..].to_vec();
        window.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected = window[(0.9 * 63.0_f64).round() as usize];
        prop_assert!(
            (learned - expected).abs() <= 1e-9,
            "learned {learned} vs empirical p90 {expected}"
        );
        // A deadline the margin keeps above the typical round.
        let median = window[31];
        prop_assert!(learned >= median, "p90 below the median?");
    }

    /// A `RateDrift::StepChange` beyond the noise envelope fires the
    /// detector on every affected worker, and never on the steady ones.
    #[test]
    fn detector_fires_on_step_change(
        (m, factor, seed) in (2usize..6, 0.15f64..0.5, any::<u64>())
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<f64> = (0..m).map(|_| rng.gen_range(1.0f64..8.0)).collect();
        let slowed = 0; // worker 0 takes the co-tenant
        let mut factors = vec![1.0; m];
        factors[slowed] = factor;
        let drift = RateDrift::StepChange { at: 20, factors };
        let mut det = DriftDetector::new(m, DriftConfig::default());
        let mut fired: Vec<usize> = Vec::new();
        for iter in 0..60 {
            for (w, &r) in drift.rates_at(&base, iter).iter().enumerate() {
                if let Some(event) = det.observe(w, r) {
                    prop_assert!(iter >= 20, "fired before the step at iter {iter}");
                    fired.push(event.worker);
                }
            }
        }
        prop_assert_eq!(fired, vec![slowed]);
        prop_assert!(det.drifting());
    }

    /// Estimation-noise-level jitter (the §V setting the group-based
    /// scheme hedges against) stays inside the detector's dead-band.
    #[test]
    fn detector_quiet_under_estimation_noise(
        (m, sigma, seed) in (2usize..6, 0.0f64..0.05, any::<u64>())
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<f64> = (0..m).map(|_| rng.gen_range(1.0f64..8.0)).collect();
        let noise = EstimationNoise::new(sigma);
        let mut det = DriftDetector::new(m, DriftConfig::default());
        for _ in 0..80 {
            for (w, &r) in noise.apply(&base, &mut rng).iter().enumerate() {
                prop_assert_eq!(det.observe(w, r), None, "false positive at σ={}", sigma);
            }
        }
        prop_assert!(!det.drifting());
    }
}
