//! The acceptance contract of the `TrainDriver` redesign: the deprecated
//! sim entry points (`train_bsp_sim`, `train_ssp_sim`) are thin wrappers
//! over the unified loop and must produce trajectories identical to
//! driving the engines directly — and the new coded-SSP engine must
//! complete with approximate decoding where exact-only decoding stalls.

#![allow(deprecated)] // this file exists to pin the deprecated wrappers

use hetgc::{
    train_bsp_sim, train_ssp_sim, ClusterSpec, CodecBackend, DriverConfig, EscalationPolicy,
    LinearRegression, SchemeBuilder, SchemeKind, Sgd, SimBspEngine, SimSspEngine, SimTrainConfig,
    StragglerModel, TrainDriver,
};
use hetgc_ml::synthetic;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cluster() -> ClusterSpec {
    ClusterSpec::from_vcpu_rows("eq", &[(1, 1), (1, 2), (1, 3), (1, 4)], 50.0).unwrap()
}

/// `train_bsp_sim` ≡ `TrainDriver` + `SimBspEngine`, bitwise: same rng
/// stream, same arithmetic, same curve — including the simulated time
/// axis and the metrics.
#[test]
fn bsp_wrapper_matches_driver_bitwise() {
    let cluster = cluster();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(80, 3, 0.01, &mut StdRng::seed_from_u64(1));
    let model = LinearRegression::new(3);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut StdRng::seed_from_u64(2))
        .unwrap();
    let cfg = SimTrainConfig {
        iterations: 25,
        learning_rate: 0.2,
        compute_jitter: 0.05,
        stragglers: StragglerModel::RandomChoice {
            count: 1,
            delay: hetgc::DelayDistribution::Constant(1.0),
        },
        ..Default::default()
    };

    let legacy = train_bsp_sim(
        &scheme,
        &model,
        &data,
        &rates,
        &cfg,
        &mut StdRng::seed_from_u64(3),
    )
    .unwrap();

    let mut engine = SimBspEngine::new(
        &scheme,
        &model,
        &data,
        &rates,
        &cfg,
        EscalationPolicy::follow_backend(),
    )
    .unwrap();
    let new = TrainDriver::new(&model, &data, Sgd::new(cfg.learning_rate))
        .with_config(DriverConfig {
            eval_every: 1,
            residual_step_scaling: false,
            adaptation: None,
            job_id: None,
        })
        .run(&mut engine, cfg.iterations, &mut StdRng::seed_from_u64(3))
        .unwrap();

    assert_eq!(legacy.curve.points.len(), new.curve.points.len());
    for ((t1, l1), (t2, l2)) in legacy.curve.points.iter().zip(&new.curve.points) {
        assert_eq!(t1, t2, "time axes must be identical");
        assert_eq!(l1, l2, "losses must be identical");
    }
    assert_eq!(legacy.params, new.params);
    assert_eq!(legacy.stalled, new.stalled);
    assert_eq!(legacy.approx_iterations, new.approx_rounds);
    assert_eq!(
        legacy.metrics.avg_iteration_time(),
        new.metrics.avg_iteration_time()
    );
    assert_eq!(
        legacy.metrics.resource_usage().ratio(),
        new.metrics.resource_usage().ratio()
    );
}

/// The stalled path agrees too: naive + fault stalls identically.
#[test]
fn bsp_wrapper_matches_driver_on_stall() {
    let cluster = cluster();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(40, 2, 0.01, &mut StdRng::seed_from_u64(4));
    let model = LinearRegression::new(2);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::Naive, &mut StdRng::seed_from_u64(5))
        .unwrap();
    let cfg = SimTrainConfig {
        iterations: 10,
        stragglers: StragglerModel::Failures { workers: vec![0] },
        ..Default::default()
    };

    let legacy = train_bsp_sim(
        &scheme,
        &model,
        &data,
        &rates,
        &cfg,
        &mut StdRng::seed_from_u64(6),
    )
    .unwrap();
    let mut engine = SimBspEngine::new(
        &scheme,
        &model,
        &data,
        &rates,
        &cfg,
        EscalationPolicy::follow_backend(),
    )
    .unwrap();
    let new = TrainDriver::new(&model, &data, Sgd::new(cfg.learning_rate))
        .run(&mut engine, cfg.iterations, &mut StdRng::seed_from_u64(6))
        .unwrap();
    assert!(legacy.stalled && new.stalled);
    assert!(legacy.curve.points.is_empty() && new.curve.points.is_empty());
    assert_eq!(legacy.metrics.failed_iterations(), 1);
    assert_eq!(new.metrics.failed_iterations(), 1);
    assert_eq!(legacy.params, new.params);
}

/// `train_ssp_sim` ≡ `TrainDriver` + `SimSspEngine::shard`, bitwise.
#[test]
fn ssp_wrapper_matches_driver_bitwise() {
    let cluster = cluster();
    let rates = cluster.throughputs();
    let data = synthetic::gaussian_blobs(60, 2, 3, 5.0, &mut StdRng::seed_from_u64(7));
    let model = hetgc::SoftmaxRegression::new(2, 3);
    let cfg = SimTrainConfig {
        iterations: 20,
        learning_rate: 0.3,
        eval_every: 4,
        ..Default::default()
    };

    let legacy = train_ssp_sim(
        &model,
        &data,
        &rates,
        3,
        &cfg,
        &mut StdRng::seed_from_u64(8),
    )
    .unwrap();

    let mut engine = SimSspEngine::shard(&model, &data, &rates, 3, &cfg).unwrap();
    let new = TrainDriver::new(&model, &data, Sgd::new(cfg.learning_rate))
        .with_config(DriverConfig {
            eval_every: cfg.eval_every,
            residual_step_scaling: false,
            adaptation: None,
            job_id: None,
        })
        .run(
            &mut engine,
            cfg.iterations * rates.len(),
            &mut StdRng::seed_from_u64(8),
        )
        .unwrap();

    assert_eq!(legacy.points.len(), new.curve.points.len());
    for ((t1, l1), (t2, l2)) in legacy.points.iter().zip(&new.curve.points) {
        assert_eq!(t1, t2, "event times must be identical");
        assert_eq!(l1, l2, "losses must be identical");
    }
}

/// The coded-SSP acceptance scenario: with two dead workers and s = 1,
/// exact-only SSP decoding stalls (every live worker reports, no decode
/// exists), while the Approx-ceiling escalation completes the run on
/// bounded-error rounds — and still reduces the loss.
#[test]
fn coded_ssp_completes_with_approx_where_exact_stalls() {
    let cluster = ClusterSpec::from_vcpu_rows("sspx", &[(5, 2)], 100.0).unwrap();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(100, 3, 0.02, &mut StdRng::seed_from_u64(14));
    let model = LinearRegression::new(3);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut StdRng::seed_from_u64(15))
        .unwrap();
    let cfg = SimTrainConfig {
        learning_rate: 0.2,
        backend: CodecBackend::Exact,
        ..Default::default()
    };
    let dead = [0usize, 2];

    let run = |policy: EscalationPolicy| {
        let mut engine =
            SimSspEngine::coded(&scheme, &model, &data, &rates, 2, &cfg, policy, &dead).unwrap();
        TrainDriver::new(&model, &data, Sgd::new(cfg.learning_rate))
            .run(&mut engine, 15, &mut StdRng::seed_from_u64(16))
            .unwrap()
    };

    let exact = run(EscalationPolicy::exact_only());
    assert!(exact.stalled, "exact-only coded SSP must stall");
    assert_eq!(exact.rounds(), 0);

    let approx = run(EscalationPolicy::escalate_to(CodecBackend::Approx));
    assert!(!approx.stalled, "escalated coded SSP must complete");
    assert_eq!(approx.rounds(), 15);
    assert_eq!(approx.approx_rounds, 15);
    let first = approx.records[0].loss.unwrap();
    let last = approx.final_loss().unwrap();
    assert!(last < first, "coded SSP must train: {first} → {last}");
    // Round completion times are the SSP event stream's, strictly
    // increasing.
    for pair in approx.records.windows(2) {
        assert!(pair[0].time < pair[1].time);
    }
}

/// Coded SSP with an intact-group fast path: a group codec completes
/// rounds from an intact group long before every worker reports.
#[test]
fn coded_ssp_group_rounds_use_fewer_reports() {
    let cluster = ClusterSpec::from_vcpu_rows("sspg", &[(6, 2)], 100.0).unwrap();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(90, 3, 0.02, &mut StdRng::seed_from_u64(17));
    let model = LinearRegression::new(3);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::GroupBased, &mut StdRng::seed_from_u64(18))
        .unwrap();
    assert!(!scheme.groups.is_empty());
    let cfg = SimTrainConfig {
        learning_rate: 0.2,
        backend: CodecBackend::Group,
        ..Default::default()
    };
    let mut engine = SimSspEngine::coded(
        &scheme,
        &model,
        &data,
        &rates,
        2,
        &cfg,
        EscalationPolicy::follow_backend(),
        &[],
    )
    .unwrap();
    let out = TrainDriver::new(&model, &data, Sgd::new(cfg.learning_rate))
        .run(&mut engine, 10, &mut StdRng::seed_from_u64(19))
        .unwrap();
    assert_eq!(out.rounds(), 10);
    assert_eq!(out.approx_rounds, 0, "group decodes are exact");
    let smallest_group = scheme
        .groups
        .iter()
        .map(|g| g.workers().len())
        .min()
        .unwrap();
    assert!(
        out.records.iter().any(|r| r.results_used <= smallest_group),
        "at least one round should decode from an intact group: {:?}",
        out.records
            .iter()
            .map(|r| r.results_used)
            .collect::<Vec<_>>()
    );
}
