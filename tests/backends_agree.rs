//! The two execution backends — the discrete-event simulator and the real
//! threaded runtime — must tell the same story through the ONE unified
//! `TrainDriver` loop: identical parameter trajectories (decoding is
//! exact in both) and consistent ordering of scheme completion behaviour.

use std::sync::Arc;
use std::time::Duration;

use hetgc::{
    ClusterSpec, CodecBackend, DriverConfig, EscalationPolicy, LinearRegression, Model,
    RuntimeConfig, SchemeBuilder, SchemeInstance, SchemeKind, Sgd, SimBspEngine, SimTrainConfig,
    ThreadedEngine, TrainDriver, TrainOutcome, WorkerBehavior,
};
use hetgc_ml::{synthetic, Dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cluster() -> ClusterSpec {
    // 1/2/3 vCPUs: heterogeneous but Eq.-5-feasible for s = 1 (the fastest
    // worker is not faster than the rest combined).
    ClusterSpec::from_vcpu_rows("itest", &[(1, 1), (1, 2), (1, 3)], 100.0).unwrap()
}

fn run_bsp(
    scheme: &SchemeInstance,
    model: &LinearRegression,
    data: &Dataset,
    rates: &[f64],
    cfg: &SimTrainConfig,
    seed: u64,
) -> TrainOutcome {
    let mut engine = SimBspEngine::new(
        scheme,
        model,
        data,
        rates,
        cfg,
        EscalationPolicy::follow_backend(),
    )
    .unwrap();
    TrainDriver::new(model, data, Sgd::new(cfg.learning_rate))
        .run(
            &mut engine,
            cfg.iterations,
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap()
}

/// Simulated BSP training and threaded training produce the same losses:
/// both decode the exact batch gradient through the same driver loop, so
/// with identical initialization the trajectories coincide.
#[test]
fn simulated_and_threaded_trajectories_match() {
    let cluster = cluster();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(90, 4, 0.02, &mut StdRng::seed_from_u64(11));
    let model = LinearRegression::new(4);

    let mut build_rng = StdRng::seed_from_u64(12);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut build_rng)
        .unwrap();

    let sim_cfg = SimTrainConfig {
        iterations: 12,
        learning_rate: 0.2,
        ..Default::default()
    };
    let sim = run_bsp(&scheme, &model, &data, &rates, &sim_cfg, 77);

    let shared_model = Arc::new(LinearRegression::new(4));
    let shared_data = Arc::new(data.clone());
    let mut threaded_engine = ThreadedEngine::new(
        scheme.code.clone(),
        Arc::clone(&shared_model),
        Arc::clone(&shared_data),
        &RuntimeConfig::default(),
    )
    .unwrap();
    let threaded = TrainDriver::new(&*shared_model, &shared_data, Sgd::new(0.2))
        .run(&mut threaded_engine, 12, &mut StdRng::seed_from_u64(77))
        .unwrap();

    assert_eq!(sim.rounds(), threaded.rounds());
    assert_eq!(sim.approx_rounds, 0);
    assert_eq!(threaded.approx_rounds, 0);
    for (a, b) in sim.records.iter().zip(&threaded.records) {
        let (sim_loss, thr_loss) = (a.loss.unwrap(), b.loss.unwrap());
        assert!(
            (sim_loss - thr_loss).abs() < 1e-8,
            "trajectories diverged: {sim_loss} vs {thr_loss}"
        );
        assert_eq!(a.step_scale, 1.0, "exact rounds take the full step");
        assert_eq!(b.step_scale, 1.0);
    }
    for (p, q) in sim.params.iter().zip(&threaded.params) {
        assert!((p - q).abs() < 1e-8);
    }
}

/// Both backends agree that coded schemes survive a dead worker and naive
/// does not.
#[test]
fn both_backends_agree_on_fault_behaviour() {
    let cluster = cluster();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(60, 3, 0.02, &mut StdRng::seed_from_u64(21));
    let model = LinearRegression::new(3);
    let mut rng = StdRng::seed_from_u64(22);

    // Simulator verdicts.
    let sim_cfg = SimTrainConfig {
        iterations: 5,
        stragglers: hetgc::StragglerModel::Failures { workers: vec![1] },
        ..Default::default()
    };
    let heter = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut rng)
        .unwrap();
    let naive = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::Naive, &mut rng)
        .unwrap();
    let sim_heter = run_bsp(&heter, &model, &data, &rates, &sim_cfg, 23);
    let sim_naive = run_bsp(&naive, &model, &data, &rates, &sim_cfg, 24);
    assert!(!sim_heter.stalled);
    assert!(sim_naive.stalled);
    assert_eq!(sim_naive.metrics.failed_iterations(), 1);

    // Threaded verdicts under the same fault: the driver surfaces the
    // runtime's undecodable-round error.
    let failing = RuntimeConfig::nominal(3)
        .set_behavior(1, WorkerBehavior::nominal().failing_from(1))
        .with_timeout(Duration::from_millis(300));
    let shared_data = Arc::new(data);
    let run_threaded = |scheme: &SchemeInstance| {
        let shared_model = Arc::new(LinearRegression::new(3));
        let mut engine = ThreadedEngine::new(
            scheme.code.clone(),
            Arc::clone(&shared_model),
            Arc::clone(&shared_data),
            &failing,
        )
        .unwrap();
        TrainDriver::new(&*shared_model, &shared_data, Sgd::new(0.1)).run(
            &mut engine,
            5,
            &mut StdRng::seed_from_u64(25),
        )
    };
    assert!(
        run_threaded(&heter).is_ok(),
        "threaded heter-aware must survive the fault"
    );
    assert!(
        run_threaded(&naive).is_err(),
        "threaded naive must time out under the fault"
    );
}

/// Loss parity with single-node SGD: the whole distributed apparatus (in
/// either backend) must not change the optimization trajectory — the
/// paper's accuracy-preservation argument for BSP coding vs SSP (§II).
#[test]
fn distributed_equals_single_node_sgd() {
    let cluster = cluster();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(80, 5, 0.05, &mut StdRng::seed_from_u64(31));
    let model = LinearRegression::new(5);

    // Single-node reference.
    let mut params = model.init_params(&mut StdRng::seed_from_u64(99));
    let n = data.len() as f64;
    let mut reference = Vec::new();
    for _ in 0..8 {
        let mut g = model.gradient(&params, &data, (0, data.len()));
        for gi in &mut g {
            *gi /= n;
        }
        for (p, gi) in params.iter_mut().zip(&g) {
            *p -= 0.15 * gi;
        }
        reference.push(model.loss(&params, &data, (0, data.len())) / n);
    }

    let mut rng = StdRng::seed_from_u64(32);
    for kind in [
        SchemeKind::Cyclic,
        SchemeKind::HeterAware,
        SchemeKind::GroupBased,
    ] {
        let scheme = SchemeBuilder::new(&cluster, 1)
            .build(kind, &mut rng)
            .unwrap();
        let cfg = SimTrainConfig {
            iterations: 8,
            learning_rate: 0.15,
            ..Default::default()
        };
        let out = run_bsp(&scheme, &model, &data, &rates, &cfg, 99);
        for (record, expected) in out.records.iter().zip(&reference) {
            let loss = record.loss.unwrap();
            assert!(
                (loss - expected).abs() < 1e-8,
                "{kind}: distributed {loss} vs single-node {expected}"
            );
        }
    }
}

/// All codec backends agree on training: for a group-based scheme the
/// group-aware, generic-exact and approximate backends (all decoding
/// exactly within the straggler budget) must produce the same loss
/// trajectory to floating-point accuracy.
#[test]
fn codec_backends_share_training_trajectory() {
    // 4 equal workers: the group-based construction yields two 2-worker
    // groups, so the group fast path actually fires every iteration.
    let cluster = ClusterSpec::from_vcpu_rows("btest", &[(4, 2)], 100.0).unwrap();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(80, 3, 0.02, &mut StdRng::seed_from_u64(41));
    let model = LinearRegression::new(3);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::GroupBased, &mut StdRng::seed_from_u64(42))
        .unwrap();
    assert!(!scheme.groups.is_empty(), "cluster must admit groups");

    let run = |backend| {
        let cfg = SimTrainConfig {
            iterations: 12,
            learning_rate: 0.2,
            backend,
            ..Default::default()
        };
        run_bsp(&scheme, &model, &data, &rates, &cfg, 77)
    };
    let exact = run(CodecBackend::Exact);
    let grouped = run(CodecBackend::Group);
    let auto = run(CodecBackend::Auto);
    let approx = run(CodecBackend::Approx);

    assert_eq!(exact.rounds(), 12);
    for other in [&grouped, &auto, &approx] {
        assert_eq!(other.rounds(), 12);
        assert_eq!(other.approx_rounds, 0, "all decodes are exact here");
        for (a, b) in other.records.iter().zip(&exact.records) {
            let (la, lb) = (a.loss.unwrap(), b.loss.unwrap());
            assert!(
                (la - lb).abs() < 1e-8,
                "trajectories diverged: {la} vs {lb}"
            );
        }
    }
    // Auto resolves to the group backend for a group-based scheme, and the
    // indicator fast path must match the generic plan *bitwise* here or to
    // fp accuracy at worst (checked above at 1e-8 on the losses).
    assert_eq!(scheme.default_backend(), CodecBackend::Group);
}

/// The acceptance scenario of the `>s` straggler path: with two failed
/// workers and s = 1, every exact backend stalls, while the approximate
/// backend finishes the run on bounded-error gradients — and still makes
/// optimization progress, with the driver's residual-aware step scaling
/// shrinking (but never zeroing) the steps.
#[test]
fn approx_backend_trains_where_exact_backends_stall() {
    let cluster = ClusterSpec::from_vcpu_rows("atest", &[(5, 2)], 100.0).unwrap();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(100, 3, 0.02, &mut StdRng::seed_from_u64(51));
    let model = LinearRegression::new(3);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut StdRng::seed_from_u64(52))
        .unwrap();
    let cfg_for = |backend| SimTrainConfig {
        iterations: 30,
        learning_rate: 0.2,
        stragglers: hetgc::StragglerModel::Failures {
            workers: vec![0, 2],
        },
        backend,
        ..Default::default()
    };

    let exact = run_bsp(
        &scheme,
        &model,
        &data,
        &rates,
        &cfg_for(CodecBackend::Exact),
        53,
    );
    assert!(exact.stalled, "two failures must stall the exact backend");
    assert!(exact.curve.points.is_empty());

    let approx = run_bsp(
        &scheme,
        &model,
        &data,
        &rates,
        &cfg_for(CodecBackend::Approx),
        53,
    );
    assert!(!approx.stalled, "approx backend must complete the run");
    assert_eq!(approx.rounds(), 30);
    assert_eq!(approx.approx_rounds, 30, "every round used the fallback");
    for r in &approx.records {
        assert!(r.residual > 0.0);
        assert!(
            r.step_scale > 0.0 && r.step_scale < 1.0,
            "approximate rounds must shrink (not zero) the step: {}",
            r.step_scale
        );
    }
    let first = approx.curve.points[0].1;
    let last = approx.final_loss().unwrap();
    assert!(
        last < first,
        "approximate gradients must still reduce the loss: {first} → {last}"
    );
}

/// Per-round escalation, simulated path: an EXACT backend with an
/// Approx-ceiling policy completes the same `>s`-failure run the plain
/// exact backend stalls on — the policy, not the backend, supplies the
/// ladder.
#[test]
fn escalation_policy_rescues_exact_backend_in_simulation() {
    let cluster = ClusterSpec::from_vcpu_rows("etest", &[(5, 2)], 100.0).unwrap();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(100, 3, 0.02, &mut StdRng::seed_from_u64(61));
    let model = LinearRegression::new(3);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut StdRng::seed_from_u64(62))
        .unwrap();
    let cfg = SimTrainConfig {
        iterations: 20,
        learning_rate: 0.2,
        stragglers: hetgc::StragglerModel::Failures {
            workers: vec![0, 2],
        },
        backend: CodecBackend::Exact,
        ..Default::default()
    };

    let run = |policy: EscalationPolicy| {
        let mut engine = SimBspEngine::new(&scheme, &model, &data, &rates, &cfg, policy).unwrap();
        TrainDriver::new(&model, &data, Sgd::new(cfg.learning_rate))
            .with_config(DriverConfig::default())
            .run(&mut engine, cfg.iterations, &mut StdRng::seed_from_u64(63))
            .unwrap()
    };

    let exact_only = run(EscalationPolicy::follow_backend());
    assert!(exact_only.stalled, "exact backend alone must stall");

    let escalated = run(EscalationPolicy::escalate_to(CodecBackend::Approx));
    assert!(!escalated.stalled);
    assert_eq!(escalated.rounds(), 20);
    assert_eq!(escalated.approx_rounds, 20);
    let first = escalated.curve.points[0].1;
    let last = escalated.final_loss().unwrap();
    assert!(last < first, "escalated run must train: {first} → {last}");
}
