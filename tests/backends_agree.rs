//! The two execution backends — the discrete-event simulator and the real
//! threaded runtime — must tell the same story: identical parameter
//! trajectories (decoding is exact in both) and consistent ordering of
//! scheme completion behaviour.

use std::time::Duration;

use hetgc::{
    train_bsp_sim, ClusterSpec, CodecBackend, LinearRegression, Model, RuntimeConfig,
    SchemeBuilder, SchemeKind, Sgd, SimTrainConfig, ThreadedTrainer, WorkerBehavior,
};
use hetgc_ml::synthetic;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cluster() -> ClusterSpec {
    // 1/2/3 vCPUs: heterogeneous but Eq.-5-feasible for s = 1 (the fastest
    // worker is not faster than the rest combined).
    ClusterSpec::from_vcpu_rows("itest", &[(1, 1), (1, 2), (1, 3)], 100.0).unwrap()
}

/// Simulated BSP training and threaded training produce the same losses:
/// both decode the exact batch gradient, so with identical initialization
/// the trajectories coincide.
#[test]
fn simulated_and_threaded_trajectories_match() {
    let cluster = cluster();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(90, 4, 0.02, &mut StdRng::seed_from_u64(11));
    let model = LinearRegression::new(4);

    let mut build_rng = StdRng::seed_from_u64(12);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut build_rng)
        .unwrap();

    let sim_cfg = SimTrainConfig {
        iterations: 12,
        learning_rate: 0.2,
        ..Default::default()
    };
    let sim = train_bsp_sim(
        &scheme,
        &model,
        &data,
        &rates,
        &sim_cfg,
        &mut StdRng::seed_from_u64(77),
    )
    .unwrap();

    let trainer = ThreadedTrainer::new(
        scheme.code.clone(),
        LinearRegression::new(4),
        data.clone(),
        Sgd::new(0.2),
        RuntimeConfig::default(),
    )
    .unwrap();
    let threaded = trainer.run(12, &mut StdRng::seed_from_u64(77)).unwrap();

    assert_eq!(sim.curve.points.len(), threaded.losses.len());
    for ((_, sim_loss), thr_loss) in sim.curve.points.iter().zip(&threaded.losses) {
        assert!(
            (sim_loss - thr_loss).abs() < 1e-8,
            "trajectories diverged: {sim_loss} vs {thr_loss}"
        );
    }
    for (p, q) in sim.params.iter().zip(&threaded.params) {
        assert!((p - q).abs() < 1e-8);
    }
}

/// Both backends agree that coded schemes survive a dead worker and naive
/// does not.
#[test]
fn both_backends_agree_on_fault_behaviour() {
    let cluster = cluster();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(60, 3, 0.02, &mut StdRng::seed_from_u64(21));
    let model = LinearRegression::new(3);
    let mut rng = StdRng::seed_from_u64(22);

    // Simulator verdicts.
    let sim_cfg = SimTrainConfig {
        iterations: 5,
        stragglers: hetgc::StragglerModel::Failures { workers: vec![1] },
        ..Default::default()
    };
    let heter = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut rng)
        .unwrap();
    let naive = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::Naive, &mut rng)
        .unwrap();
    let sim_heter = train_bsp_sim(&heter, &model, &data, &rates, &sim_cfg, &mut rng).unwrap();
    let sim_naive = train_bsp_sim(&naive, &model, &data, &rates, &sim_cfg, &mut rng).unwrap();
    assert!(!sim_heter.stalled);
    assert!(sim_naive.stalled);

    // Threaded verdicts under the same fault.
    let failing = RuntimeConfig::nominal(3)
        .set_behavior(1, WorkerBehavior::nominal().failing_from(1))
        .with_timeout(Duration::from_millis(300));
    let heter_run = ThreadedTrainer::new(
        heter.code.clone(),
        LinearRegression::new(3),
        data.clone(),
        Sgd::new(0.1),
        failing.clone(),
    )
    .unwrap()
    .run(5, &mut rng);
    assert!(
        heter_run.is_ok(),
        "threaded heter-aware must survive the fault"
    );

    let naive_run = ThreadedTrainer::new(
        naive.code.clone(),
        LinearRegression::new(3),
        data,
        Sgd::new(0.1),
        failing,
    )
    .unwrap()
    .run(5, &mut rng);
    assert!(
        naive_run.is_err(),
        "threaded naive must time out under the fault"
    );
}

/// Loss parity with single-node SGD: the whole distributed apparatus (in
/// either backend) must not change the optimization trajectory — the
/// paper's accuracy-preservation argument for BSP coding vs SSP (§II).
#[test]
fn distributed_equals_single_node_sgd() {
    let cluster = cluster();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(80, 5, 0.05, &mut StdRng::seed_from_u64(31));
    let model = LinearRegression::new(5);

    // Single-node reference.
    let mut params = model.init_params(&mut StdRng::seed_from_u64(99));
    let n = data.len() as f64;
    let mut reference = Vec::new();
    for _ in 0..8 {
        let mut g = model.gradient(&params, &data, (0, data.len()));
        for gi in &mut g {
            *gi /= n;
        }
        for (p, gi) in params.iter_mut().zip(&g) {
            *p -= 0.15 * gi;
        }
        reference.push(model.loss(&params, &data, (0, data.len())) / n);
    }

    let mut rng = StdRng::seed_from_u64(32);
    for kind in [
        SchemeKind::Cyclic,
        SchemeKind::HeterAware,
        SchemeKind::GroupBased,
    ] {
        let scheme = SchemeBuilder::new(&cluster, 1)
            .build(kind, &mut rng)
            .unwrap();
        let cfg = SimTrainConfig {
            iterations: 8,
            learning_rate: 0.15,
            ..Default::default()
        };
        let out = train_bsp_sim(
            &scheme,
            &model,
            &data,
            &rates,
            &cfg,
            &mut StdRng::seed_from_u64(99),
        )
        .unwrap();
        for ((_, loss), expected) in out.curve.points.iter().zip(&reference) {
            assert!(
                (loss - expected).abs() < 1e-8,
                "{kind}: distributed {loss} vs single-node {expected}"
            );
        }
    }
}

/// All codec backends agree on training: for a group-based scheme the
/// group-aware, generic-exact and approximate backends (all decoding
/// exactly within the straggler budget) must produce the same loss
/// trajectory to floating-point accuracy.
#[test]
fn codec_backends_share_training_trajectory() {
    // 4 equal workers: the group-based construction yields two 2-worker
    // groups, so the group fast path actually fires every iteration.
    let cluster = ClusterSpec::from_vcpu_rows("btest", &[(4, 2)], 100.0).unwrap();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(80, 3, 0.02, &mut StdRng::seed_from_u64(41));
    let model = LinearRegression::new(3);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::GroupBased, &mut StdRng::seed_from_u64(42))
        .unwrap();
    assert!(!scheme.groups.is_empty(), "cluster must admit groups");

    let run = |backend| {
        let cfg = SimTrainConfig {
            iterations: 12,
            learning_rate: 0.2,
            backend,
            ..Default::default()
        };
        train_bsp_sim(
            &scheme,
            &model,
            &data,
            &rates,
            &cfg,
            &mut StdRng::seed_from_u64(77),
        )
        .unwrap()
    };
    let exact = run(CodecBackend::Exact);
    let grouped = run(CodecBackend::Group);
    let auto = run(CodecBackend::Auto);
    let approx = run(CodecBackend::Approx);

    assert_eq!(exact.curve.points.len(), 12);
    for other in [&grouped, &auto, &approx] {
        assert_eq!(other.curve.points.len(), 12);
        assert_eq!(other.approx_iterations, 0, "all decodes are exact here");
        for ((_, a), (_, b)) in other.curve.points.iter().zip(&exact.curve.points) {
            assert!((a - b).abs() < 1e-8, "trajectories diverged: {a} vs {b}");
        }
    }
    // Auto resolves to the group backend for a group-based scheme, and the
    // indicator fast path must match the generic plan *bitwise* here or to
    // fp accuracy at worst (checked above at 1e-8 on the losses).
    assert_eq!(scheme.default_backend(), CodecBackend::Group);
}

/// The acceptance scenario of the `>s` straggler path: with two failed
/// workers and s = 1, every exact backend stalls, while the approximate
/// backend finishes the run on bounded-error gradients — and still makes
/// optimization progress.
#[test]
fn approx_backend_trains_where_exact_backends_stall() {
    let cluster = ClusterSpec::from_vcpu_rows("atest", &[(5, 2)], 100.0).unwrap();
    let rates = cluster.throughputs();
    let data = synthetic::linear_regression(100, 3, 0.02, &mut StdRng::seed_from_u64(51));
    let model = LinearRegression::new(3);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut StdRng::seed_from_u64(52))
        .unwrap();
    let cfg_for = |backend| SimTrainConfig {
        iterations: 30,
        learning_rate: 0.2,
        stragglers: hetgc::StragglerModel::Failures {
            workers: vec![0, 2],
        },
        backend,
        ..Default::default()
    };

    let exact = train_bsp_sim(
        &scheme,
        &model,
        &data,
        &rates,
        &cfg_for(CodecBackend::Exact),
        &mut StdRng::seed_from_u64(53),
    )
    .unwrap();
    assert!(exact.stalled, "two failures must stall the exact backend");
    assert!(exact.curve.points.is_empty());

    let approx = train_bsp_sim(
        &scheme,
        &model,
        &data,
        &rates,
        &cfg_for(CodecBackend::Approx),
        &mut StdRng::seed_from_u64(53),
    )
    .unwrap();
    assert!(!approx.stalled, "approx backend must complete the run");
    assert_eq!(approx.curve.points.len(), 30);
    assert_eq!(
        approx.approx_iterations, 30,
        "every round used the fallback"
    );
    let first = approx.curve.points[0].1;
    let last = approx.curve.final_loss().unwrap();
    assert!(
        last < first,
        "approximate gradients must still reduce the loss: {first} → {last}"
    );
}
