//! Cross-crate integration: the full encode → straggle → decode → SGD
//! pipeline recovers exact gradients across schemes, models and backends.

use hetgc::{
    ClusterSpec, DecodePlan, GradientBlock, GradientCodec, Mlp, Model, SchemeBuilder, SchemeKind,
    SoftmaxRegression,
};
use hetgc_cluster::PartitionAssignment;
use hetgc_ml::{partial_gradients_into, synthetic};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// For every scheme and every straggler pattern of size ≤ s, the decoded
/// gradient equals the direct full-batch gradient of a real model.
#[test]
fn decoded_gradient_exact_for_all_single_straggler_patterns() {
    let cluster = ClusterSpec::cluster_a();
    let mut rng = StdRng::seed_from_u64(1);
    let data = synthetic::gaussian_blobs(96, 4, 3, 4.0, &mut rng);
    let model = SoftmaxRegression::new(4, 3);
    let params = model.init_params(&mut rng);
    let direct = model.gradient(&params, &data, (0, data.len()));

    for kind in [
        SchemeKind::Cyclic,
        SchemeKind::HeterAware,
        SchemeKind::GroupBased,
    ] {
        let scheme = SchemeBuilder::new(&cluster, 1)
            .build(kind, &mut rng)
            .unwrap();
        let codec = scheme.compile();
        let k = codec.partitions();
        let assignment = PartitionAssignment::even(data.len(), k).unwrap();
        let ranges: Vec<(usize, usize)> = assignment.iter().collect();
        let mut partials = GradientBlock::new(0, 0);
        partial_gradients_into(&model, &params, &data, &ranges, &mut partials);

        let mut arrivals = GradientBlock::new(cluster.len(), model.num_params());
        let mut decoded = vec![0.0; model.num_params()];
        for straggler in 0..cluster.len() {
            let survivors: Vec<usize> = (0..cluster.len()).filter(|&w| w != straggler).collect();
            let plan = codec
                .decode_plan(&survivors)
                .unwrap_or_else(|e| panic!("{kind}: pattern {straggler}: {e}"));
            for &w in &survivors {
                codec
                    .encode_into(w, &partials, arrivals.row_mut(w))
                    .unwrap();
            }
            plan.apply_block_into(&arrivals, &mut decoded).unwrap();
            let err = decoded
                .iter()
                .zip(&direct)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0_f64, f64::max);
            assert!(err < 1e-6, "{kind}: straggler {straggler}: max err {err}");
        }
    }
}

/// Two simultaneous stragglers with an s = 2 design, nonconvex model.
#[test]
fn decoded_gradient_exact_with_two_stragglers_mlp() {
    let cluster = ClusterSpec::cluster_a();
    let mut rng = StdRng::seed_from_u64(2);
    let data = synthetic::image_like(120, 12, 4, &mut rng);
    let model = Mlp::new(12, 8, 4);
    let params = model.init_params(&mut rng);
    let direct = model.gradient(&params, &data, (0, data.len()));

    let scheme = SchemeBuilder::new(&cluster, 2)
        .build(SchemeKind::HeterAware, &mut rng)
        .unwrap();
    let codec = scheme.compile();
    let assignment = PartitionAssignment::even(data.len(), codec.partitions()).unwrap();
    let ranges: Vec<(usize, usize)> = assignment.iter().collect();
    let mut partials = GradientBlock::new(0, 0);
    partial_gradients_into(&model, &params, &data, &ranges, &mut partials);

    // Random double-straggler patterns (repeats exercise the plan cache).
    let mut workers: Vec<usize> = (0..cluster.len()).collect();
    let mut arrivals = GradientBlock::new(cluster.len(), model.num_params());
    let mut decoded = vec![0.0; model.num_params()];
    for _ in 0..12 {
        workers.shuffle(&mut rng);
        let dead = &workers[..2];
        let plan = codec.decode_plan_for_stragglers(dead).unwrap();
        for &w in plan.workers() {
            codec
                .encode_into(w, &partials, arrivals.row_mut(w))
                .unwrap();
        }
        plan.apply_block_into(&arrivals, &mut decoded).unwrap();
        let err = decoded
            .iter()
            .zip(&direct)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0_f64, f64::max);
        let scale = direct.iter().map(|x| x.abs()).fold(1.0_f64, f64::max);
        assert!(err < 1e-6 * scale, "dead {dead:?}: max err {err}");
    }
}

/// Group-based decoding via an intact group gives the same gradient as the
/// generic decode path.
#[test]
fn group_decode_agrees_with_generic_decode() {
    let mut rng = StdRng::seed_from_u64(3);
    let throughputs = [1.0, 1.0, 1.0, 1.0];
    let g = hetgc::group_based(&throughputs, 4, 1, &mut rng).unwrap();
    assert!(!g.groups().is_empty());

    let data = synthetic::linear_regression(40, 3, 0.1, &mut rng);
    let model = hetgc::LinearRegression::new(3);
    let params = model.init_params(&mut rng);
    let direct = model.gradient(&params, &data, (0, data.len()));

    let assignment = PartitionAssignment::even(40, 4).unwrap();
    let ranges: Vec<(usize, usize)> = assignment.iter().collect();
    let mut partials = GradientBlock::new(0, 0);
    partial_gradients_into(&model, &params, &data, &ranges, &mut partials);

    let group = &g.groups()[0];
    let survivors: Vec<usize> = group.workers().to_vec();
    let a = g.group_decode_vector(&survivors).expect("group intact");
    let plan = DecodePlan::from_dense(&a);
    let mut arrivals = GradientBlock::new(4, model.num_params());
    for &w in &survivors {
        g.code()
            .encode_into(w, &partials, arrivals.row_mut(w))
            .unwrap();
    }
    let mut decoded = vec![0.0; model.num_params()];
    plan.apply_block_into(&arrivals, &mut decoded).unwrap();
    for (x, y) in decoded.iter().zip(&direct) {
        assert!((x - y).abs() < 1e-8, "{x} vs {y}");
    }
}

/// The full Table II inventory builds every paper scheme and verifies C1
/// by sampling (exhaustive blows up at m = 58).
#[test]
fn all_clusters_all_schemes_robust() {
    let mut rng = StdRng::seed_from_u64(4);
    for cluster in ClusterSpec::table2() {
        for kind in [
            SchemeKind::Cyclic,
            SchemeKind::HeterAware,
            SchemeKind::GroupBased,
        ] {
            let scheme = SchemeBuilder::new(&cluster, 1)
                .build(kind, &mut rng)
                .unwrap_or_else(|e| panic!("{} {kind}: {e}", cluster.name()));
            hetgc::verify_condition_c1_sampled(&scheme.code, 25, &mut rng)
                .unwrap_or_else(|e| panic!("{} {kind}: {e}", cluster.name()));
        }
    }
}
