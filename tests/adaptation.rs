//! End-to-end acceptance of the `hetgc-telemetry` adaptation loop: a
//! `TrainDriver` run with `AdaptationConfig` under `RateDrift::StepChange`
//! re-codes mid-run and beats the static allocation on average round
//! time — on the sim-BSP path (real SGD composed with drift) AND on the
//! threaded-runtime path (real wall-clock telemetry, hot worker-pool
//! respawn) — while a run with adaptation disabled is bitwise unchanged.

use std::sync::Arc;

use hetgc::{
    synthetic, AdaptationConfig, ClusterSpec, DriverConfig, EscalationPolicy, LinearRegression,
    RateDrift, RuntimeConfig, SchemeBuilder, SchemeKind, Sgd, SimBspEngine, SimTrainConfig,
    ThreadedEngine, TrainDriver, TrainOutcome, WorkerBehavior,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn drifty_cluster() -> ClusterSpec {
    ClusterSpec::from_vcpu_rows("drifty", &[(1, 2), (1, 3), (1, 4), (1, 5)], 10.0).unwrap()
}

/// One sim-BSP training run (real SGD) under the given drift, with or
/// without the adaptation loop.
fn bsp_run(drift: &RateDrift, adaptation: Option<AdaptationConfig>, seed: u64) -> TrainOutcome {
    let cluster = drifty_cluster();
    let mut rng = StdRng::seed_from_u64(seed);
    let data = synthetic::linear_regression(96, 3, 0.01, &mut rng);
    let model = LinearRegression::new(3);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut rng)
        .unwrap();
    let cfg = SimTrainConfig {
        compute_jitter: 0.03,
        ..SimTrainConfig::default()
    };
    let mut engine = SimBspEngine::new(
        &scheme,
        &model,
        &data,
        &cluster.throughputs(),
        &cfg,
        EscalationPolicy::follow_backend(),
    )
    .unwrap()
    .with_drift(drift.clone());
    TrainDriver::new(&model, &data, Sgd::new(0.2))
        .with_config(DriverConfig {
            adaptation,
            ..DriverConfig::default()
        })
        .run(&mut engine, 60, &mut rng)
        .unwrap()
}

#[test]
fn sim_bsp_adaptation_recodes_and_beats_static_under_step_drift() {
    // Two workers lose 70 % of their speed at round 16: beyond the s = 1
    // budget, so the static allocation waits for a slowed worker every
    // round; the adaptive run re-codes from live estimates and recovers.
    let drift = RateDrift::StepChange {
        at: 15,
        factors: vec![1.0, 1.0, 0.3, 0.3],
    };
    let static_out = bsp_run(&drift, None, 11);
    let adaptive_out = bsp_run(&drift, Some(AdaptationConfig::default()), 11);

    let report = adaptive_out.adaptation.as_ref().expect("adaptation on");
    assert!(report.recodes() > 0, "no re-code fired: {report:?}");
    assert!(
        report.recode_rounds.iter().all(|&r| r > 15),
        "re-coded before the drift: {report:?}"
    );
    let t_static = static_out.metrics.avg_iteration_time().unwrap();
    let t_adaptive = adaptive_out.metrics.avg_iteration_time().unwrap();
    assert!(
        t_adaptive < t_static * 0.90,
        "adaptive {t_adaptive:.3} should beat static {t_static:.3}"
    );
    // Real SGD really trained on both paths.
    for out in [&static_out, &adaptive_out] {
        assert_eq!(out.rounds(), 60);
        assert!(out.final_loss().unwrap() < out.records[0].loss.unwrap());
    }
}

#[test]
fn adaptation_off_is_bitwise_unchanged() {
    // `RateDrift::None` + default config must reproduce a plain run bit
    // for bit: same records, same losses, same params.
    let plain = bsp_run(&RateDrift::None, None, 7);
    let with_none_drift = bsp_run(&RateDrift::None, None, 7);
    assert_eq!(plain.records, with_none_drift.records);
    assert_eq!(plain.params, with_none_drift.params);
    assert!(plain.adaptation.is_none());

    // And the adaptation pipeline itself, observing a no-drift run, must
    // not change the trajectory either: no recode ever fires and the rng
    // stream is untouched (the pipeline draws no randomness).
    let observed = bsp_run(&RateDrift::None, Some(AdaptationConfig::default()), 7);
    let report = observed.adaptation.as_ref().expect("adaptation on");
    assert_eq!(report.recodes(), 0, "no drift, no re-code");
    assert_eq!(report.recode_failures, 0);
    // Rounds before any learned deadline is installed are bitwise equal.
    let warmup = observed
        .records
        .iter()
        .zip(&plain.records)
        .take_while(|(a, b)| a == b)
        .count();
    assert!(
        warmup >= 8,
        "adaptation must not perturb warm-up rounds: {warmup}"
    );
}

/// One threaded-runtime training run over 5 real worker threads whose
/// throttles emulate the drifting cluster: workers 2 and 3 slow 4× from
/// round 13 on (`WorkerBehavior::with_throttle_step`).
fn threaded_run(adaptive: bool, seed: u64) -> (TrainOutcome, usize) {
    let rates = [800.0, 800.0, 800.0, 800.0, 1000.0];
    let mut rng = StdRng::seed_from_u64(seed);
    let data = synthetic::linear_regression(80, 3, 0.01, &mut rng);
    let model = LinearRegression::new(3);
    let code = hetgc::heter_aware(&rates, 10, 1, &mut StdRng::seed_from_u64(99)).unwrap();

    let mut config = RuntimeConfig::nominal(5);
    for (w, &r) in rates.iter().enumerate() {
        let mut b = WorkerBehavior::nominal().with_throttle(r);
        if w == 2 || w == 3 {
            b = b.with_throttle_step(13, r / 4.0);
        }
        config = config.set_behavior(w, b);
    }

    let mut engine = ThreadedEngine::new(
        code,
        Arc::new(LinearRegression::new(3)),
        Arc::new(data.clone()),
        &config,
    )
    .unwrap();
    if adaptive {
        engine = engine.with_recoding(SchemeKind::HeterAware, 1);
    }
    let adaptation = adaptive.then(|| AdaptationConfig {
        // Wall-clock rounds are tens of ms; keep the learned deadline off
        // so the comparison isolates re-coding (the exact ladder cannot
        // escalate here anyway).
        learn_deadline: false,
        ..AdaptationConfig::default()
    });
    let out = TrainDriver::new(&model, &data, Sgd::new(0.1))
        .with_config(DriverConfig {
            adaptation,
            ..DriverConfig::default()
        })
        .run(&mut engine, 36, &mut rng)
        .unwrap();
    let recodes = engine.recodes();
    (out, recodes)
}

#[test]
fn threaded_adaptation_recodes_and_beats_static_under_step_drift() {
    let (static_out, static_recodes) = threaded_run(false, 21);
    let (adaptive_out, adaptive_recodes) = threaded_run(true, 21);
    assert_eq!(static_recodes, 0);
    assert!(adaptive_recodes > 0, "threaded path must hot-swap the pool");
    let report = adaptive_out.adaptation.as_ref().expect("adaptation on");
    assert_eq!(report.recodes(), adaptive_recodes);

    // Compare only the post-drift regime: wall-clock noise dominates the
    // identical pre-drift rounds.
    let post = |out: &TrainOutcome| -> f64 {
        let tail: Vec<f64> = out.records[20..].iter().map(|r| r.elapsed).collect();
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    let t_static = post(&static_out);
    let t_adaptive = post(&adaptive_out);
    assert!(
        t_adaptive < t_static * 0.85,
        "adaptive post-drift rounds {t_adaptive:.4}s should beat static {t_static:.4}s"
    );
    // Both really trained.
    for out in [&static_out, &adaptive_out] {
        assert_eq!(out.rounds(), 36);
        assert!(out.final_loss().unwrap() < out.records[0].loss.unwrap());
    }
}

#[test]
fn streaming_records_match_the_outcome() {
    // The JSONL sink streams exactly the records the outcome reports.
    let cluster = drifty_cluster();
    let mut rng = StdRng::seed_from_u64(5);
    let data = synthetic::linear_regression(96, 3, 0.01, &mut rng);
    let model = LinearRegression::new(3);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut rng)
        .unwrap();
    let cfg = SimTrainConfig::default();
    let mut engine = SimBspEngine::new(
        &scheme,
        &model,
        &data,
        &cluster.throughputs(),
        &cfg,
        EscalationPolicy::follow_backend(),
    )
    .unwrap();
    let mut buf: Vec<u8> = Vec::new();
    let out = TrainDriver::new(&model, &data, Sgd::new(0.2))
        .with_record_writer(&mut buf)
        .run(&mut engine, 12, &mut rng)
        .unwrap();
    let text = String::from_utf8(buf).unwrap();
    let parsed = hetgc::parse_round_records(&text).unwrap();
    assert_eq!(parsed, out.records);
}
