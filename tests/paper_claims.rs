//! The paper's headline claims, asserted as integration tests. Each test
//! names the claim and the section it comes from.

use hetgc::analysis::{optimality_ratio, theorem5_lower_bound};
use hetgc::experiment::{fig2, fig5, Fig2Config, Fig5Config};
use hetgc::{ClusterSpec, SchemeBuilder, SchemeKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 5 (§IV-B): the heter-aware strategy attains the lower bound
/// `(s+1)k/Σc` exactly when Eq. 5 is integral — on Cluster-A itself.
#[test]
fn theorem5_holds_on_cluster_a() {
    let cluster = ClusterSpec::cluster_a();
    let c = cluster.throughputs();
    let mut rng = StdRng::seed_from_u64(1);
    for s in [1usize, 2] {
        let scheme = SchemeBuilder::new(&cluster, s)
            .build(SchemeKind::HeterAware, &mut rng)
            .unwrap();
        let ratio = optimality_ratio(&scheme.code, &c).unwrap();
        assert!((ratio - 1.0).abs() < 1e-9, "s={s}: ratio {ratio}");
    }
}

/// §I / §VI-A-1: "our heter-aware coding scheme even achieves 3× speedup
/// compared to cyclic coding scheme" in the fault case. We require ≥ 2.5×
/// (the exact factor depends on the vCPU mix).
#[test]
fn fault_case_speedup_approx_3x() {
    let cfg = Fig2Config {
        delays: vec![0.0],
        include_fault: true,
        iterations: 12,
        ..Fig2Config::default()
    };
    let rows = fig2(&cfg).unwrap();
    let fault = rows
        .iter()
        .find(|r| r.delay.is_infinite())
        .expect("fault row");
    let get = |kind: SchemeKind| {
        fault
            .avg_times
            .iter()
            .find(|(k, _)| *k == kind)
            .and_then(|(_, t)| *t)
    };
    let cyclic = get(SchemeKind::Cyclic).expect("cyclic survives faults");
    let heter = get(SchemeKind::HeterAware).expect("heter survives faults");
    let speedup = cyclic / heter;
    assert!(
        speedup > 2.5,
        "expected ≈3x speedup of heter-aware over cyclic at fault, got {speedup:.2}x"
    );
    assert!(
        get(SchemeKind::Naive).is_none(),
        "naive must fail under faults"
    );
}

/// Fig. 2's delay insensitivity: heter-aware and group-based average
/// iteration times move by < 10 % between no delay and a 10 s delay, while
/// naive grows by multiple seconds.
#[test]
fn coded_schemes_are_delay_insensitive() {
    let cfg = Fig2Config {
        delays: vec![0.0, 10.0],
        include_fault: false,
        iterations: 15,
        ..Fig2Config::default()
    };
    let rows = fig2(&cfg).unwrap();
    let get = |row: usize, kind: SchemeKind| {
        rows[row]
            .avg_times
            .iter()
            .find(|(k, _)| *k == kind)
            .unwrap()
            .1
            .unwrap()
    };
    for kind in [SchemeKind::HeterAware, SchemeKind::GroupBased] {
        let (t0, t10) = (get(0, kind), get(1, kind));
        assert!(
            (t10 - t0).abs() / t0 < 0.10,
            "{kind} moved {t0:.2} → {t10:.2} under 10s delays"
        );
    }
    let (n0, n10) = (get(0, SchemeKind::Naive), get(1, SchemeKind::Naive));
    assert!(
        n10 > n0 + 4.0,
        "naive must absorb the delay: {n0:.2} → {n10:.2}"
    );
}

/// §VI-A-2: "traditional cyclic coding scheme even makes performance worse
/// [than naive]" on heterogeneous clusters — the uniform 2× load lands on
/// the slowest machines.
#[test]
fn cyclic_worse_than_naive_without_stragglers() {
    // With no transient stragglers the effect is purely heterogeneity.
    let cluster = ClusterSpec::cluster_b();
    let c = cluster.throughputs();
    let mut rng = StdRng::seed_from_u64(3);
    let cyclic = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::Cyclic, &mut rng)
        .unwrap();
    let naive = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::Naive, &mut rng)
        .unwrap();
    // Deterministic completion-time comparison at equal dataset size:
    // per-partition work = N/k differs per scheme, so compare normalized
    // worst-case times × (N/k).
    let n = 1000.0;
    let t_cyclic = cyclic.code.worst_case_time(&c).unwrap() * n / cyclic.code.partitions() as f64;
    let t_naive = naive.code.worst_case_time(&c).unwrap() * n / naive.code.partitions() as f64;
    assert!(
        t_cyclic > t_naive,
        "cyclic ({t_cyclic:.2}) should be slower than naive ({t_naive:.2}) on Cluster-B"
    );
}

/// Fig. 5's ordering: naive < cyclic < heter-aware ≈ group-based in
/// resource usage.
#[test]
fn resource_usage_ordering_matches_fig5() {
    let cfg = Fig5Config {
        iterations: 20,
        ..Fig5Config::default()
    };
    let rows = fig5(&cfg).unwrap();
    let get = |kind: SchemeKind| {
        rows.iter()
            .find(|r| r.scheme == kind)
            .unwrap()
            .usage
            .unwrap()
    };
    assert!(get(SchemeKind::Naive) < get(SchemeKind::Cyclic));
    assert!(get(SchemeKind::Cyclic) < get(SchemeKind::HeterAware));
    assert!(get(SchemeKind::Cyclic) < get(SchemeKind::GroupBased));
}

/// Lemma 2's consequence: Alg.-1 strategies decode from exactly m − s
/// workers; group-based strategies can decode from a strict subset when a
/// group is intact (§V's |A| reduction).
#[test]
fn group_based_decodes_from_fewer_workers() {
    let mut rng = StdRng::seed_from_u64(5);
    // Homogeneous 6-worker cluster, k = 6, s = 1: arcs of 2 tile the
    // circle, so groups of 3 workers exist.
    let throughputs = [1.0; 6];
    let group = hetgc::group_based(&throughputs, 6, 1, &mut rng).unwrap();
    assert!(!group.groups().is_empty());

    let order: Vec<usize> = group.groups()[0].workers().to_vec();
    let group_prefix = hetgc::decodable_prefix_len(group.code(), &order).unwrap();
    assert!(group_prefix <= order.len());
    assert!(
        group_prefix < 5,
        "group decode should beat m−s = 5, got {group_prefix}"
    );

    // On a *heterogeneous* allocation with distinct replica sets, Alg. 1
    // needs exactly m − s workers (Example 1 of the paper). (Homogeneous
    // arcs that tile the circle give several partitions identical replica
    // sets, so the code degenerates into a repetition code and can decode
    // earlier — that case is covered by the group assertions above.)
    let heter = hetgc::heter_aware(&[1.0, 2.0, 3.0, 4.0, 4.0], 7, 1, &mut rng).unwrap();
    let full_order: Vec<usize> = (0..5).collect();
    let heter_prefix = hetgc::decodable_prefix_len(&heter, &full_order).unwrap();
    assert_eq!(heter_prefix, 4, "Alg.1 decodes at exactly m−s");
}

/// The bound itself: no replication-(s+1) scheme can beat (s+1)k/Σc — the
/// cyclic and fractional baselines respect it too.
#[test]
fn no_scheme_beats_theorem5_bound() {
    let mut rng = StdRng::seed_from_u64(6);
    let c = [2.0, 2.0, 4.0, 4.0, 8.0, 8.0];
    for (label, code) in [
        ("cyclic", hetgc::cyclic(6, 1, &mut rng).unwrap()),
        ("frac", hetgc::fractional_repetition(6, 6, 1).unwrap()),
        ("heter", hetgc::heter_aware(&c, 7, 1, &mut rng).unwrap()),
    ] {
        let t = code.worst_case_time(&c).unwrap();
        let bound = theorem5_lower_bound(code.partitions(), code.stragglers(), &c);
        assert!(t >= bound - 1e-9, "{label}: T(B)={t} < bound {bound}");
    }
}
