//! Integration tests for the extensions layered on top of the paper's
//! schemes: overlap, adaptive re-coding, approximate decoding, the decode
//! cache and iteration tracing — exercised together through the public
//! API.

use hetgc::adaptive::{run_with_drift, AdaptiveConfig};
use hetgc::RateDrift;
use hetgc::{
    gradient_error_bound_l2, simulate_bsp_iteration, under_replicated, ApproxCodec,
    BspIterationConfig, ClusterSpec, GradientCodec, IterationTrace, NetworkModel, SchemeBuilder,
    SchemeKind, StragglerEvent,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Overlap strictly improves completion time and resource usage whenever
/// communication is non-trivial, and never changes the decode result.
#[test]
fn overlap_improves_but_preserves_decoding() {
    let cluster = ClusterSpec::cluster_a();
    let rates = cluster.throughputs();
    let mut rng = StdRng::seed_from_u64(1);
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut rng)
        .unwrap();
    let events = vec![StragglerEvent::Normal; cluster.len()];

    let base = BspIterationConfig::new(&rates)
        .network(NetworkModel::lan())
        .payload_bytes(2.4e8);
    let plain = simulate_bsp_iteration(&scheme.code, &base, &events, &mut rng).unwrap();
    let overlapped_cfg = BspIterationConfig::new(&rates)
        .network(NetworkModel::lan())
        .payload_bytes(2.4e8)
        .overlap_chunks(8);
    let overlapped =
        simulate_bsp_iteration(&scheme.code, &overlapped_cfg, &events, &mut rng).unwrap();

    let (t_plain, t_over) = (plain.completion.unwrap(), overlapped.completion.unwrap());
    assert!(
        t_over < t_plain,
        "overlap must shorten the round: {t_over} vs {t_plain}"
    );
    assert!(
        overlapped.resource_usage().unwrap() > plain.resource_usage().unwrap(),
        "overlap must raise usage"
    );
    // Decoding itself is untouched: both rounds produce valid exact decode
    // plans (read through the supported `DecodePlan` accessors).
    for out in [&plain, &overlapped] {
        let plan = out.decode_plan();
        assert!(plan.is_exact());
        let prod = scheme.code.matrix().vecmat(&plan.to_dense()).unwrap();
        assert!(prod.iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }
}

/// The adaptive loop, the decode cache and tracing compose on one cluster.
#[test]
fn adaptive_run_with_cache_and_trace() {
    let cluster =
        ClusterSpec::from_vcpu_rows("x", &[(1, 2), (1, 3), (1, 4), (1, 5)], 10.0).unwrap();
    // A clear step change fires the drift detector and re-codes; a wave
    // inside the noise envelope must keep running without thrashing.
    let drift = RateDrift::StepChange {
        at: 6,
        factors: vec![1.0, 0.3, 0.3, 1.0],
    };
    let cfg = AdaptiveConfig {
        iterations: 24,
        reestimate_every: 6,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(2);
    let out = run_with_drift(&cluster, &drift, &cfg, &mut rng).unwrap();
    assert_eq!(out.metrics.iterations(), 24);
    assert!(out.rebuilds >= 1, "step drift must trigger a re-code");
    let wave = RateDrift::Wave {
        period: 8.0,
        amplitude: 0.3,
    };
    let wave_out = run_with_drift(&cluster, &wave, &cfg, &mut rng).unwrap();
    assert_eq!(wave_out.metrics.iterations(), 24);

    // The compiled codec's plan cache: repeated patterns hit.
    let scheme = SchemeBuilder::new(&cluster, 1)
        .build(SchemeKind::HeterAware, &mut rng)
        .unwrap();
    let codec = scheme.compile_with_cache(8);
    for _ in 0..5 {
        codec.decode_plan_for_stragglers(&[1]).unwrap();
    }
    assert_eq!(codec.cache_hits(), 4);
    assert_eq!(codec.cache_misses(), 1);

    // Tracing renders a complete round.
    let rates = cluster.throughputs();
    let cfg2 = BspIterationConfig::new(&rates);
    let events = vec![StragglerEvent::Normal; 4];
    let it = simulate_bsp_iteration(&codec, &cfg2, &events, &mut rng).unwrap();
    let text = IterationTrace::new(&it).render();
    assert!(text.contains("DECODE"));
    let gantt = IterationTrace::new(&it).gantt(24);
    assert_eq!(gantt.lines().count(), 4);
}

/// Approximate decoding degrades monotonically with lost workers, and the
/// error bound is sound on real gradients.
#[test]
fn approximate_decoding_error_bound_holds() {
    use hetgc_cluster::PartitionAssignment;
    use hetgc_ml::{partial_gradients, synthetic, LinearRegression, Model};

    let throughputs = [1.0, 2.0, 3.0, 4.0, 4.0];
    let mut rng = StdRng::seed_from_u64(3);
    let code = under_replicated(&throughputs, 7, 2, &mut rng).unwrap(); // s = 1 exact

    let data = synthetic::linear_regression(70, 3, 0.1, &mut rng);
    let model = LinearRegression::new(3);
    let params = model.init_params(&mut rng);
    let ranges: Vec<(usize, usize)> = PartitionAssignment::even(70, 7).unwrap().iter().collect();
    let partials = partial_gradients(&model, &params, &data, &ranges);
    let direct = model.gradient(&params, &data, (0, 70));

    // Two stragglers (one past tolerance): approximate decode through the
    // codec backend, consumed via `DecodePlan` accessors.
    let survivors = [1usize, 3, 4];
    let codec = ApproxCodec::new(code).with_max_residual(3.0);
    let plan = codec.approximate_plan(&survivors).unwrap();
    assert!(!plan.is_exact());
    assert!(plan.workers().iter().all(|w| survivors.contains(w)));
    let mut ghat = [0.0; 4];
    for (w, coef) in plan.iter() {
        let coded = codec.encode(w, &partials).unwrap();
        for (g, c) in ghat.iter_mut().zip(&coded) {
            *g += coef * c;
        }
    }
    let err: f64 = ghat
        .iter()
        .zip(&direct)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let partial_norms: Vec<f64> = partials
        .iter()
        .map(|g| g.iter().map(|x| x * x).sum::<f64>().sqrt())
        .collect();
    // The rigorous Cauchy–Schwarz bound over partitions.
    let bound = gradient_error_bound_l2(plan.residual(), &partial_norms);
    assert!(err <= bound + 1e-9, "err {err} exceeds bound {bound}");
    assert!(err > 0.0, "approximate decode should not be exact here");
}

/// Under-replicated codes slot into the standard simulator unchanged.
#[test]
fn under_replicated_code_simulates() {
    let throughputs = [1.0, 2.0, 3.0, 4.0, 4.0];
    let mut rng = StdRng::seed_from_u64(4);
    let code = under_replicated(&throughputs, 7, 2, &mut rng).unwrap();
    let cfg = BspIterationConfig::new(&throughputs).network(NetworkModel::instantaneous());
    let events = vec![StragglerEvent::Normal; 5];
    let out = simulate_bsp_iteration(&code, &cfg, &events, &mut rng).unwrap();
    // r = 2 → same as s = 1 exact scheme: completes at 2k/Σc = 1.0.
    assert!((out.completion.unwrap() - 1.0).abs() < 1e-9);
}
