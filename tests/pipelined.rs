//! Acceptance: the double-buffered `PipelinedDriver` beats the
//! sequential `TrainDriver` wall-clock on the real threaded runtime —
//! asserted, not just benched.
//!
//! The workload is built so both sides are sleep-dominated (deterministic
//! under CI load): workers are throttled to a fixed compute time per
//! round, and the master's per-round work is dominated by a loss
//! evaluation with a fixed cost (a wrapper model that sleeps in `loss`,
//! which only the master calls — workers only ever call `gradient`).
//! Sequential rounds cost `compute + loss`; pipelined rounds overlap the
//! two and cost `max(compute, loss)`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hetgc::{
    heter_aware, synthetic, Dataset, LinearRegression, Model, PipelinedDriver, RuntimeConfig, Sgd,
    ThreadedEngine, TrainDriver, WorkerBehavior,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `LinearRegression` with a fixed master-side evaluation cost: `loss`
/// sleeps before delegating. Workers never call `loss`, so the sleep
/// lands exclusively on the driver's critical path.
struct SlowLossModel {
    inner: LinearRegression,
    loss_cost: Duration,
}

impl Model for SlowLossModel {
    fn num_params(&self) -> usize {
        self.inner.num_params()
    }

    fn loss(&self, params: &[f64], data: &Dataset, range: (usize, usize)) -> f64 {
        std::thread::sleep(self.loss_cost);
        self.inner.loss(params, data, range)
    }

    fn gradient(&self, params: &[f64], data: &Dataset, range: (usize, usize)) -> Vec<f64> {
        self.inner.gradient(params, data, range)
    }

    fn gradient_into(
        &self,
        params: &[f64],
        data: &Dataset,
        range: (usize, usize),
        out: &mut [f64],
    ) {
        self.inner.gradient_into(params, data, range, out);
    }

    fn init_params(&self, rng: &mut dyn rand::RngCore) -> Vec<f64> {
        self.inner.init_params(rng)
    }
}

const ROUNDS: usize = 16;
const COMPUTE_MS: u64 = 30;
const LOSS_MS: u64 = 15;

fn engine(model: &Arc<SlowLossModel>, data: &Arc<Dataset>) -> ThreadedEngine<SlowLossModel> {
    let mut rng = StdRng::seed_from_u64(77);
    let code = heter_aware(&[1.0; 4], 4, 1, &mut rng).unwrap();
    // Every worker owns load × n/k = 2 × 60 = 120 samples; a throttle of
    // 120 / 0.030 s stretches each round's compute to ~COMPUTE_MS.
    let rate = 120.0 / (COMPUTE_MS as f64 / 1000.0);
    let mut config = RuntimeConfig::nominal(4);
    for w in 0..4 {
        config = config.set_behavior(w, WorkerBehavior::nominal().with_throttle(rate));
    }
    ThreadedEngine::new(code, Arc::clone(model), Arc::clone(data), &config).unwrap()
}

#[test]
fn pipelined_driver_beats_sequential_on_the_threaded_runtime() {
    let mut rng = StdRng::seed_from_u64(5);
    let data = Arc::new(synthetic::linear_regression(240, 3, 0.01, &mut rng));
    let model = Arc::new(SlowLossModel {
        inner: LinearRegression::new(3),
        loss_cost: Duration::from_millis(LOSS_MS),
    });

    // Sequential reference: every round pays compute + loss in series.
    let mut seq_engine = engine(&model, &data);
    let started = Instant::now();
    let sequential = TrainDriver::new(model.as_ref(), data.as_ref(), Sgd::new(0.2))
        .run(&mut seq_engine, ROUNDS, &mut StdRng::seed_from_u64(9))
        .unwrap();
    let seq_elapsed = started.elapsed();

    // Pipelined: round t+1 computes while the master steps/evaluates t.
    let mut pipe_engine = engine(&model, &data);
    let started = Instant::now();
    let pipelined = PipelinedDriver::new(model.as_ref(), data.as_ref(), Sgd::new(0.2))
        .run(&mut pipe_engine, ROUNDS, &mut StdRng::seed_from_u64(9))
        .unwrap();
    let pipe_elapsed = started.elapsed();

    // Both trained for the full run and made real progress (the
    // pipeline's one-round staleness must not break convergence).
    assert_eq!(sequential.rounds(), ROUNDS);
    assert_eq!(pipelined.rounds(), ROUNDS);
    for out in [&sequential, &pipelined] {
        let first = out.records[0].loss.expect("eval_every = 1");
        let last = out.final_loss().unwrap();
        assert!(last < first * 0.5, "{}: {first} → {last}", out.label);
    }

    // The acceptance bar: the sleep-dominated construction puts the
    // sequential run at ≥ ROUNDS × (COMPUTE + LOSS) while the pipelined
    // run hides the loss evaluations behind the next round's compute.
    let floor = Duration::from_millis(ROUNDS as u64 * (COMPUTE_MS + LOSS_MS));
    assert!(
        seq_elapsed >= floor - Duration::from_millis(5),
        "sequential run finished impossibly fast: {seq_elapsed:?}"
    );
    assert!(
        pipe_elapsed < seq_elapsed.mul_f64(0.85),
        "pipelined ({pipe_elapsed:?}) must beat sequential ({seq_elapsed:?}) by ≥ 15%"
    );

    // Data-plane telemetry flows through the pipelined records too: every
    // round consumed coded payloads (one Arc allocation per reply).
    assert!(pipelined.records.iter().all(|r| r.alloc_bytes > 0));
    assert!(pipelined.records.iter().any(|r| r.pool_hits > 0));
}
