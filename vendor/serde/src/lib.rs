//! Offline `serde` shim. The workspace derives `Serialize`/`Deserialize`
//! purely as API surface (no serializer is ever wired up, avoiding the
//! external dependency), so this crate re-exports no-op derives plus
//! marker traits under the same names.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
