//! A minimal, offline, API-compatible subset of `crossbeam`: only the
//! `channel` module surface the runtime crate needs (`unbounded`,
//! `Sender::send`, `Receiver::{recv, recv_timeout, try_recv}`), backed by
//! `std::sync::mpsc`.

pub mod channel {
    //! MPSC channels with the crossbeam calling convention.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel. Clonable.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(42).unwrap();
            assert_eq!(rx.recv().unwrap(), 42);
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn timeout_elapses() {
            let (tx, rx) = unbounded::<i32>();
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            ));
            drop(tx);
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            ));
        }

        #[test]
        fn clone_sender_across_threads() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            for h in handles {
                h.join().unwrap();
            }
            let mut got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
