//! Offline stand-in for the `proptest` crate.
//!
//! Implements exactly the authoring surface the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`prop::collection::vec`], [`any`], [`Just`], the
//! `proptest!` macro (both the item form and the inline closure form),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! [`test_runner::ProptestConfig`]. Failing cases are reported with the
//! failure message; there is **no shrinking** — cases are deterministic
//! per test (the RNG is seeded from the test's module path and name), so a
//! failure reproduces by rerunning the same test.

pub mod test_runner {
    //! Runner configuration and case outcomes.

    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Runner knobs (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the test fails with this message.
        Fail(String),
        /// A `prop_assume!` rejected the inputs — the case is skipped.
        Reject(String),
    }

    /// The deterministic RNG driving strategy generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds from an arbitrary label (typically the test path) so each
        /// test draws an independent, reproducible stream.
        pub fn deterministic(label: &str) -> Self {
            let mut h = DefaultHasher::new();
            label.hash(&mut h);
            TestRng(StdRng::seed_from_u64(h.finish()))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// Generates values of an associated type from a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Derives a new strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Reference-style strategies (`&strategy` generates like the base),
    /// letting helpers pass strategies by reference.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for a few primitive types.

    use rand::{Rng, RngCore};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u32()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection::vec`).

    pub mod collection {
        //! Collection strategies.

        use rand::Rng;

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Length specification for [`vec`]: a fixed size or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// The strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.lo + 1 >= self.size.hi {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..self.size.hi)
                };
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// A `Vec` whose elements come from `elem` and whose length comes
        /// from `size` (a fixed `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }
}

pub use prop::collection;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Rejects the current case (skipped, not failed) when the assumption does
/// not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// The test-declaration macro. Supports the item form
/// (`proptest! { #![proptest_config(...)] #[test] fn name(x in strat) {..} }`)
/// and the inline closure form (`proptest!(|(pat in strat)| { .. })`).
#[macro_export]
macro_rules! proptest {
    (|($($pat:pat in $strat:expr),+ $(,)?)| $body:block) => {{
        let config = $crate::test_runner::ProptestConfig::default();
        let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
            module_path!(),
            "::<closure>:",
            line!()
        ));
        $crate::__proptest_run_cases!(config, rng, ($($pat in $strat),+) $body);
    }};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands the item form.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            $crate::__proptest_run_cases!(config, rng, ($($pat in $strat),+) $body);
        }
    )*};
}

/// Implementation detail of [`proptest!`]: the case loop shared by both
/// forms.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run_cases {
    ($config:expr, $rng:expr, ($($pat:pat in $strat:expr),+) $body:block) => {{
        let mut executed: u32 = 0;
        let mut attempts: u32 = 0;
        let max_attempts = $config.cases.saturating_mul(32).max(1024);
        while executed < $config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "proptest: gave up after {attempts} attempts ({executed} cases passed); \
                 too many prop_assume! rejections"
            );
            $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);)+
            let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
            match outcome {
                ::core::result::Result::Ok(()) => executed += 1,
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed (case {executed}): {msg}");
                }
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..5).prop_flat_map(|n| (Just(n), prop::collection::vec(-1.0f64..1.0, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
        }

        #[test]
        fn flat_map_sizes_agree((n, v) in pair()) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_skips(v in prop::collection::vec(0u32..4, 1..4)) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn any_u64_composes_with_map(x in any::<u64>().prop_map(|v| v % 7)) {
            prop_assert!(x < 7);
        }
    }

    #[test]
    fn closure_form_runs() {
        let strat = (1usize..4, 1usize..4);
        proptest!(|((a, b) in strat)| {
            prop_assert!(a * b <= 9);
        });
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic() {
        proptest!(|(x in 0usize..10)| {
            prop_assert!(x > 100, "x = {x}");
        });
    }
}
