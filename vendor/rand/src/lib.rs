//! A minimal, offline, API-compatible subset of the `rand` crate.
//!
//! The workspace pins its external surface to the handful of `rand` items
//! the paper reproduction actually uses — [`RngCore`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`] — implemented here over a xoshiro256++
//! generator so the build needs no network access. Streams are *not*
//! bit-compatible with upstream `rand`; every test in this workspace
//! asserts scheme invariants rather than exact sampled values, so only
//! determinism per seed matters.

/// The backing random source: 64 bits at a time.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..1.0)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    pub mod mock {
        //! Deterministic mock generators for tests.

        use super::RngCore;

        /// Returns `initial`, `initial + increment`, … as raw 64-bit
        /// output — handy for exercising code paths deterministically.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            state: u64,
            increment: u64,
        }

        impl StepRng {
            /// A generator stepping from `initial` by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    state: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.state;
                self.state = self.state.wrapping_add(self.increment);
                out
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&bytes[..chunk.len()]);
                }
            }
        }
    }

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded via SplitMix64. Not cryptographic; not stream-compatible
    /// with upstream `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&y));
            let z = rng.gen_range(0u32..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0.0f64..1.0);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
