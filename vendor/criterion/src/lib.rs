//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Exposes the subset of criterion's authoring API the workspace benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Criterion::bench_function`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], `criterion_group!`, `criterion_main!` — over a simple
//! median-of-samples wall-clock harness. No statistics, plots or saved
//! baselines: each benchmark prints one line
//! `bench <group>/<id> ... median <time> (<samples> samples)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives timing of one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Times `routine`, collecting the configured number of samples. Each
    /// sample runs the routine enough times to cross a minimum measurable
    /// window, then records the per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes at least ~200 µs so short routines are measurable.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// The benchmark harness entry point, handed to every bench function.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 11 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.sample_count,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_count, &mut f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_count: usize, f: &mut F) {
    let mut bencher = Bencher::new(sample_count);
    f(&mut bencher);
    match bencher.median() {
        Some(t) => {
            println!(
                "bench {label:<40} median {:<12} ({sample_count} samples)",
                fmt_duration(t)
            )
        }
        None => println!("bench {label:<40} (no samples)"),
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(3);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_count, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Runs an unparameterized benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_count, &mut f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group-runner function from bench functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.median().is_some());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
        assert_eq!(BenchmarkId::new("solve", 8).to_string(), "solve/8");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion { sample_count: 3 };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(1), &4u64, |b, &x| {
            b.iter(|| x.wrapping_mul(3))
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1u64 + 1));
    }
}
