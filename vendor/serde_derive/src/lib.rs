//! No-op derive macros backing the offline `serde` shim: the workspace
//! only uses `#[derive(Serialize, Deserialize)]` as metadata (nothing is
//! ever serialized through serde at runtime), so the derives expand to
//! nothing and the attribute remains valid.

use proc_macro::TokenStream;

/// Expands to nothing; accepts the standard `#[serde(...)]` attribute.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts the standard `#[serde(...)]` attribute.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
